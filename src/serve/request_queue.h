// Bounded MPMC request queue for the inference engine: a fixed set of
// strict-priority lanes with SLO-aware shedding hooks.
//
// Producers (client threads calling InferenceEngine::submit) never block:
// try_push fails immediately when the queue is at capacity, which is the
// engine's backpressure signal — under overload the caller sheds load at
// admission instead of growing an unbounded latency backlog. When the
// queue is full but a *higher*-priority request arrives, the youngest
// request of the lowest-priority occupied lane is evicted instead and
// handed back to the caller to shed (the lane discipline: kBatch absorbs
// overload so kInteractive latency holds). Consumers (engine workers)
// block on pop with an optional deadline; pops drain lanes in strict
// priority order (kInteractive > kDefault > kBatch), FIFO within a lane.
//
// A paused queue admits pushes but holds all pops — the drain-control knob
// behind InferenceEngine::pause()/resume() (quiesce workers, let a burst
// accumulate, take a consistent stats reading, ...).
#pragma once

#include <chrono>
#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <optional>

#include "data/sparse_vector.h"
#include "sys/common.h"

namespace slide {

/// Priority lane of a request. Lower value = served first; strict priority
/// (an interactive request always pops before any default or batch one).
enum class Priority : std::uint8_t {
  kInteractive = 0,
  kDefault = 1,
  kBatch = 2,
};

inline constexpr int kNumLanes = 3;

constexpr int lane_index(Priority p) noexcept {
  return static_cast<int>(p);
}

const char* to_string(Priority p) noexcept;

/// Why a request was shed instead of served. Routed to the caller through
/// the request's future as a ShedError, so clients can distinguish "the
/// server chose not to serve this in time" from "serving it failed".
enum class ShedReason : std::uint8_t {
  /// Admission control: the deadline had already passed at submit, or the
  /// EWMA queue-wait estimate said it could not be met. Never enqueued.
  kAdmission = 0,
  /// Evicted from a full queue to admit a higher-priority request.
  kQueueEvicted = 1,
  /// Deadline expired while queued; dropped at pop time.
  kDeadlineExpired = 2,
};

const char* to_string(ShedReason r) noexcept;

/// The typed shed/timeout error. A future resolving with ShedError means
/// the request was *dropped by policy* (deadline or overload) — retrying
/// later or degrading gracefully is appropriate. Any other exception means
/// serving was attempted and failed.
class ShedError : public Error {
 public:
  ShedError(ShedReason reason, const std::string& what)
      : Error(what), reason_(reason) {}
  ShedReason reason() const noexcept { return reason_; }

 private:
  ShedReason reason_;
};

/// Absent-deadline sentinel: requests without an SLO never shed.
inline constexpr std::chrono::steady_clock::time_point kNoDeadline =
    std::chrono::steady_clock::time_point::max();

/// Result of one served request.
struct Prediction {
  /// Top-k labels, descending score (fewer than k if the sampled active set
  /// was smaller).
  std::vector<Index> labels;
  /// Version of the model snapshot that produced the result.
  std::uint64_t snapshot_version = 0;
  /// End-to-end latency (submit to completion), microseconds.
  double latency_us = 0.0;
};

/// One queued inference request. Exactly one of {promise, callback} is
/// observed by the issuing client; workers fulfill both paths the same way.
struct ServeRequest {
  SparseVector features;
  int top_k = 1;
  bool exact = false;
  /// Results [page_offset, page_offset + top_k) of the full ranking — the
  /// pagination surface over Network::topk_iterator. 0 = first page (the
  /// ordinary batched top-k path).
  int page_offset = 0;
  /// SLO contract: absolute steady-clock deadline (kNoDeadline = none).
  /// Expired requests are shed at admission or pop time, never served.
  std::chrono::steady_clock::time_point deadline = kNoDeadline;
  Priority priority = Priority::kDefault;
  std::chrono::steady_clock::time_point enqueue_time;
  std::promise<Prediction> promise;
  std::function<void(Prediction)> callback;  // empty -> promise path

  bool has_deadline() const noexcept { return deadline != kNoDeadline; }
  bool expired(std::chrono::steady_clock::time_point now) const noexcept {
    return has_deadline() && now >= deadline;
  }
};

class RequestQueue {
 public:
  explicit RequestQueue(std::size_t capacity);

  RequestQueue(const RequestQueue&) = delete;
  RequestQueue& operator=(const RequestQueue&) = delete;

  /// Outcome of try_push. `!admitted` = backpressure (queue full of
  /// same-or-higher-priority work, or closed). `evicted` carries a
  /// lower-priority request bumped to make room — the caller owns shedding
  /// it (failing its promise with ShedError{kQueueEvicted}).
  struct PushOutcome {
    bool admitted = false;
    std::optional<ServeRequest> evicted;
    explicit operator bool() const noexcept { return admitted; }
  };

  /// Enqueues into the request's priority lane unless full or closed;
  /// never blocks. On a full queue, admission of a higher-priority request
  /// evicts the youngest request of the lowest-priority occupied lane.
  PushOutcome try_push(ServeRequest&& request);

  /// Blocks until an item is available (and the queue is unpaused) or the
  /// queue is closed and drained. Returns false only in the latter case.
  /// Pops strict-priority: the highest-priority non-empty lane, FIFO.
  bool pop(ServeRequest& out);

  /// Like pop, but gives up at `deadline`. A deadline already in the past
  /// still drains immediately-available items (the micro-batcher's "take
  /// what is already here" case).
  bool pop_until(ServeRequest& out,
                 std::chrono::steady_clock::time_point deadline);

  /// Stops admission and wakes all poppers; queued items remain poppable
  /// so a close drains rather than drops.
  void close();
  bool closed() const;

  /// Pause/resume consumption (admission unaffected).
  void set_paused(bool paused);

  /// Total queued requests across lanes.
  std::size_t depth() const;
  /// Queued requests in one lane.
  std::size_t lane_depth(Priority lane) const;
  /// Requests that would be served before a new arrival of `priority`:
  /// everything in its lane and above. The admission-control wait estimate
  /// multiplies this by the EWMA per-request service time.
  std::size_t depth_ahead_of(Priority priority) const;

  std::size_t capacity() const noexcept { return capacity_; }

 private:
  bool poppable_locked() const {
    return !paused_ && size_ > 0;
  }
  ServeRequest pop_front_locked();

  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::deque<ServeRequest> lanes_[kNumLanes];
  std::size_t size_ = 0;  // sum of lane sizes
  std::size_t capacity_;
  bool closed_ = false;
  bool paused_ = false;
};

}  // namespace slide
