// Bounded MPMC request queue for the inference engine.
//
// Producers (client threads calling InferenceEngine::submit) never block:
// try_push fails immediately when the queue is at capacity, which is the
// engine's backpressure signal — under overload the caller sheds load at
// admission instead of growing an unbounded latency backlog. Consumers
// (engine workers) block on pop with an optional deadline; the deadline
// variant is what implements the adaptive micro-batching window.
//
// A paused queue admits pushes but holds all pops — the drain-control knob
// behind InferenceEngine::pause()/resume() (quiesce workers, let a burst
// accumulate, take a consistent stats reading, ...).
#pragma once

#include <chrono>
#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>

#include "data/sparse_vector.h"
#include "sys/common.h"

namespace slide {

/// Result of one served request.
struct Prediction {
  /// Top-k labels, descending score (fewer than k if the sampled active set
  /// was smaller).
  std::vector<Index> labels;
  /// Version of the model snapshot that produced the result.
  std::uint64_t snapshot_version = 0;
  /// End-to-end latency (submit to completion), microseconds.
  double latency_us = 0.0;
};

/// One queued inference request. Exactly one of {promise, callback} is
/// observed by the issuing client; workers fulfill both paths the same way.
struct ServeRequest {
  SparseVector features;
  int top_k = 1;
  bool exact = false;
  /// Results [page_offset, page_offset + top_k) of the full ranking — the
  /// pagination surface over Network::topk_iterator. 0 = first page (the
  /// ordinary batched top-k path).
  int page_offset = 0;
  std::chrono::steady_clock::time_point enqueue_time;
  std::promise<Prediction> promise;
  std::function<void(Prediction)> callback;  // empty -> promise path
};

class RequestQueue {
 public:
  explicit RequestQueue(std::size_t capacity);

  RequestQueue(const RequestQueue&) = delete;
  RequestQueue& operator=(const RequestQueue&) = delete;

  /// Enqueues unless full or closed; never blocks. False = backpressure.
  bool try_push(ServeRequest&& request);

  /// Blocks until an item is available (and the queue is unpaused) or the
  /// queue is closed and drained. Returns false only in the latter case.
  bool pop(ServeRequest& out);

  /// Like pop, but gives up at `deadline`. A deadline already in the past
  /// still drains immediately-available items (the micro-batcher's "take
  /// what is already here" case).
  bool pop_until(ServeRequest& out,
                 std::chrono::steady_clock::time_point deadline);

  /// Stops admission and wakes all poppers; queued items remain poppable
  /// so a close drains rather than drops.
  void close();
  bool closed() const;

  /// Pause/resume consumption (admission unaffected).
  void set_paused(bool paused);

  std::size_t depth() const;
  std::size_t capacity() const noexcept { return capacity_; }

 private:
  bool poppable_locked() const {
    return !paused_ && !items_.empty();
  }

  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::deque<ServeRequest> items_;
  std::size_t capacity_;
  bool closed_ = false;
  bool paused_ = false;
};

}  // namespace slide
