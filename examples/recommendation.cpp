// Product-to-product recommendation — the Amazon-670K-like scenario of the
// paper. Trains with the DWTA hash family (the paper's choice for very
// sparse inputs) and serves top-k recommendations through LSH-sampled
// inference, comparing them against exact scoring.
//
//   ./build/examples/recommendation [scale] [iterations] [threads]
#include <cstdio>
#include <cstdlib>

#include "slide/slide.h"

int main(int argc, char** argv) {
  using namespace slide;

  const Scale scale = parse_scale(argc > 1 ? argv[1] : "tiny");
  const long iterations = argc > 2 ? std::atol(argv[2]) : 400;
  const int threads = argc > 3 ? std::atoi(argv[3]) : hardware_threads();

  std::printf("== generating amazon-like recommendation dataset ==\n");
  const SyntheticDataset data = make_synthetic_xc(amazon_like(scale));
  std::printf("%s\n", describe(data.train.stats(), "train").c_str());

  // Paper hyper-parameters for Amazon-670K: DWTA hash, K=8, L=50.
  const Index label_dim = data.train.label_dim();
  const Index target = std::max<Index>(32, label_dim / 100);
  HashFamilyConfig family;
  family.kind = HashFamilyKind::kDwta;
  family.k = 8;
  family.l = 50;
  family.bin_size = 8;
  HashTable::Config table;
  table.range_pow = 14;
  Network network = NetworkBuilder(data.train.feature_dim())
                        .dense(128)
                        .sampled(label_dim, family, target)
                        .table(table)
                        .max_batch(256)  // paper uses batch 256 for Amazon
                        .build(threads);
  TrainerConfig tcfg;
  tcfg.batch_size = 256;
  tcfg.num_threads = threads;
  tcfg.learning_rate = 1e-3f;
  Trainer trainer(network, tcfg);

  WallTimer timer;
  trainer.train(data.train, iterations, [&](long it) {
    const double acc = evaluate_p_at_1(network, data.test, trainer.pool(),
                                       {.exact = true, .max_samples = 500});
    std::printf("  iter %5ld | %6.1fs | P@1 %.3f | active %.2f%%\n", it,
                timer.seconds(), acc,
                100.0 * network.output_layer().average_active_fraction());
  }, std::max<long>(1, iterations / 4));

  // Serve recommendations: top-5 products for a few query baskets, through
  // both the exact scorer and LSH-sampled inference (the production path —
  // cost scales with the active set, not the catalogue).
  network.rebuild_all(&trainer.pool());
  InferenceContext ctx(network);
  std::printf("\n== top-5 recommendations for 5 query baskets ==\n");
  int overlap_total = 0;
  for (int q = 0; q < 5; ++q) {
    const Sample& query = data.test[static_cast<std::size_t>(q)];
    const auto exact = network.predict_topk(query.features, ctx, 5, true);
    const auto sampled = network.predict_topk(query.features, ctx, 5, false);
    std::printf("query %d (true label %u)\n  exact  :", q, query.labels[0]);
    for (Index p : exact) std::printf(" %u", p);
    std::printf("\n  sampled:");
    for (Index p : sampled) std::printf(" %u", p);
    std::printf("\n");
    for (Index p : sampled) {
      for (Index e : exact) {
        if (p == e) {
          ++overlap_total;
          break;
        }
      }
    }
  }
  std::printf("sampled/exact top-5 overlap: %d of 25\n", overlap_total);

  const double recall = evaluate_p_at_1(network, data.test, trainer.pool(),
                                        {.exact = false, .max_samples = 2000});
  std::printf("serving-path (sampled) P@1: %.3f\n", recall);
  return 0;
}
