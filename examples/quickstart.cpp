// Quickstart: train a SLIDE network on a small synthetic extreme-
// classification dataset, evaluate precision@1, then serve it through the
// concurrent inference engine.
//
//   ./build/examples/quickstart
//
// This is the 60-second tour of the public API: generate data, describe the
// paper's architecture (sparse input -> 128 dense ReLU -> LSH-sampled
// softmax), train with the batch-parallel HOGWILD trainer, evaluate, and
// finally stand up the serve/ stack (ModelStore snapshot + InferenceEngine
// micro-batching). See examples/serve_cli.cpp for the full load driver with
// hot-swapping, and bench/serve_throughput.cpp for the tuning numbers.
#include <cstdio>
#include <cstdlib>

#include "slide/slide.h"

int main() {
  using namespace slide;

  // SLIDE_SHARDS=N (default 0 = monolithic) splits the output layer into N
  // model-parallel LSH shards (core/sharded_layer.h) — same API, same
  // training loop, per-shard table maintenance. CI runs this smoke at
  // shards={1,4}.
  const char* shards_env = std::getenv("SLIDE_SHARDS");
  const int shards = shards_env == nullptr ? 0 : std::atoi(shards_env);

  // 1. Data: a Delicious-200K-like synthetic stand-in at tiny scale
  //    (use read_xc_file() to load a real XC-repository file instead).
  const SyntheticDataset data = make_synthetic_xc(delicious_like(Scale::kTiny));
  std::printf("%s\n", describe(data.train.stats(), "train").c_str());
  std::printf("%s\n", describe(data.test.stats(), "test").c_str());

  // 2. Network: the paper's benchmark architecture, described fluently —
  //    sparse input -> 32 dense ReLU -> LSH-sampled softmax (Simhash with
  //    K=6, L=24; activate ~64 of the 500 classes per sample). Swap
  //    .sampled(...) for .dense(labels, Activation::kSoftmax) to get the
  //    full dense baseline, or .random_sampled(labels, 64) for the
  //    sampled-softmax baseline — same Trainer, checkpoints, and serving.
  HashFamilyConfig family;
  family.kind = HashFamilyKind::kSimhash;
  family.k = 6;
  family.l = 24;
  HashTable::Config table;
  table.range_pow = 10;

  const int threads = hardware_threads();
  NetworkBuilder builder(data.train.feature_dim());
  builder.dense(32)
      .sampled(data.train.label_dim(), family, /*sampling_target=*/64)
      .table(table);
  if (shards > 0) builder.shards(shards);
  Network network = builder.max_batch(64).build(threads);
  std::printf("network: %zu parameters, %d layers, output sampling %.1f%%, "
              "shards %d\n",
              network.num_parameters(), network.num_layers(),
              100.0 * 64 / data.train.label_dim(), shards);

  // 3. Train: one thread per batch instance, lazy Adam, LSH rebuilds on the
  //    exponential-decay schedule.
  TrainerConfig train_cfg;
  train_cfg.batch_size = 64;
  train_cfg.num_threads = threads;
  train_cfg.learning_rate = 5e-3f;
  Trainer trainer(network, train_cfg);

  WallTimer timer;
  trainer.train(data.train, /*iterations=*/200, [&](long iteration) {
    const double acc = evaluate_p_at_1(network, data.test, trainer.pool(),
                                       {.exact = true, .max_samples = 300});
    // stack() (not output_layer()) — the generic Layer accessor works for
    // monolithic and sharded output layers alike.
    std::printf("  iter %4ld | %5.1fs | P@1 %.3f | active %.1f%%\n",
                iteration, timer.seconds(), acc,
                100.0 * network.stack(network.stack_depth() - 1)
                            .average_active_fraction());
  }, /*callback_every=*/50);

  // 4. Final evaluation: exact (all classes scored) and LSH-sampled
  //    inference, plus a sample prediction.
  const double exact = evaluate_p_at_1(network, data.test, trainer.pool(),
                                       {.exact = true});
  const double sampled = evaluate_p_at_1(network, data.test, trainer.pool(),
                                         {.exact = false});
  std::printf("final P@1: exact %.3f | sampled %.3f\n", exact, sampled);

  InferenceContext ctx(network);  // sizes its scratch from the model
  const Sample& probe = data.test[0];
  std::printf("sample 0: true label %u, predicted %u\n", probe.labels[0],
              network.predict_top1(probe.features, ctx, true));

  // Whole batches go through one call — this is the path the serving
  // engine's micro-batcher uses; pass a pool to fan the batch out.
  std::vector<SparseVector> queries;
  for (std::size_t i = 0; i < 16; ++i)
    queries.push_back(data.test[i].features);
  BatchOutput batch_out;
  network.predict_batch(queries, batch_out, &trainer.pool(), /*top_k=*/3,
                        /*exact=*/true);
  std::printf("batch of %zu served in one predict_batch call; row 0 top "
              "label %u\n",
              batch_out.size(), batch_out.row(0)[0]);

  // 5. Serve: snapshot the trained model into a ModelStore and drive a few
  //    requests through the concurrent micro-batching engine. Futures
  //    resolve with top-k labels; ModelStore::publish / publish_clone
  //    hot-swaps a newer model under live traffic. The store's contract:
  //    hash tables must be current when a network is published.
  network.rebuild_all(&trainer.pool());
  // std::move relinquishes `network` — neither it nor `trainer` may be
  // used past this line. To keep training while serving, hand the store a
  // copy instead: publish_clone(*store, network) (see serve_cli.cpp).
  auto store = std::make_shared<ModelStore>(
      std::make_shared<Network>(std::move(network)), "quickstart");
  ServeConfig serve_cfg;
  serve_cfg.num_workers = 2;
  serve_cfg.max_batch = 8;
  serve_cfg.max_wait_us = 200;
  InferenceEngine engine(store, serve_cfg);
  std::vector<std::future<Prediction>> futures;
  for (std::size_t i = 0; i < 8; ++i) {
    // nullopt = backpressure (queue full); real clients retry or shed.
    auto future = engine.submit(data.test[i].features, {.top_k = 3});
    if (future.has_value()) futures.push_back(std::move(*future));
  }
  for (std::size_t i = 0; i < futures.size(); ++i) {
    const Prediction p = futures[i].get();
    if (p.labels.empty()) continue;  // sampled inference may come up empty
    std::printf("  served %zu: top label %u (snapshot v%llu, %.0fus)\n", i,
                p.labels[0], static_cast<unsigned long long>(
                                 p.snapshot_version),
                p.latency_us);
  }
  return 0;
}
