// Quickstart: train a SLIDE network on a small synthetic extreme-
// classification dataset and evaluate precision@1.
//
//   ./build/examples/quickstart
//
// This is the 60-second tour of the public API: generate data, describe the
// paper's architecture (sparse input -> 128 dense ReLU -> LSH-sampled
// softmax), train with the batch-parallel HOGWILD trainer, evaluate.
#include <cstdio>

#include "slide/slide.h"

int main() {
  using namespace slide;

  // 1. Data: a Delicious-200K-like synthetic stand-in at tiny scale
  //    (use read_xc_file() to load a real XC-repository file instead).
  const SyntheticDataset data = make_synthetic_xc(delicious_like(Scale::kTiny));
  std::printf("%s\n", describe(data.train.stats(), "train").c_str());
  std::printf("%s\n", describe(data.test.stats(), "test").c_str());

  // 2. Network: the paper's benchmark architecture. Simhash with K=6, L=24
  //    on the output layer; activate ~64 of the 500 classes per sample.
  HashFamilyConfig family;
  family.kind = HashFamilyKind::kSimhash;
  family.k = 6;
  family.l = 24;
  NetworkConfig net_cfg = make_paper_network(
      data.train.feature_dim(), data.train.label_dim(), family,
      /*sampling_target=*/64, /*hidden_units=*/32);
  net_cfg.max_batch_size = 64;
  net_cfg.layers[0].table.range_pow = 10;

  const int threads = hardware_threads();
  Network network(net_cfg, threads);
  std::printf("network: %zu parameters, %d layers, output sampling %.1f%%\n",
              network.num_parameters(), network.num_layers(),
              100.0 * 64 / data.train.label_dim());

  // 3. Train: one thread per batch instance, lazy Adam, LSH rebuilds on the
  //    exponential-decay schedule.
  TrainerConfig train_cfg;
  train_cfg.batch_size = 64;
  train_cfg.num_threads = threads;
  train_cfg.learning_rate = 5e-3f;
  Trainer trainer(network, train_cfg);

  WallTimer timer;
  trainer.train(data.train, /*iterations=*/200, [&](long iteration) {
    const double acc = evaluate_p_at_1(network, data.test, trainer.pool(),
                                       {.exact = true, .max_samples = 300});
    std::printf("  iter %4ld | %5.1fs | P@1 %.3f | active %.1f%%\n",
                iteration, timer.seconds(), acc,
                100.0 * network.output_layer().average_active_fraction());
  }, /*callback_every=*/50);

  // 4. Final evaluation: exact (all classes scored) and LSH-sampled
  //    inference, plus a sample prediction.
  const double exact = evaluate_p_at_1(network, data.test, trainer.pool(),
                                       {.exact = true});
  const double sampled = evaluate_p_at_1(network, data.test, trainer.pool(),
                                         {.exact = false});
  std::printf("final P@1: exact %.3f | sampled %.3f\n", exact, sampled);

  InferenceContext ctx(network.max_sampled_units());
  const Sample& probe = data.test[0];
  std::printf("sample 0: true label %u, predicted %u\n", probe.labels[0],
              network.predict_top1(probe.features, ctx, true));
  return 0;
}
