// Standalone LSH similarity search with the library's hash-table substrate —
// the (K, L) structure of paper §2 used directly, without a neural network:
// index a collection of vectors, query with LSH bucket probes + candidate
// re-ranking, and compare recall/latency against brute force.
//
//   ./build/examples/lsh_topk_search [num_vectors] [dim] [queries]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "slide/slide.h"

int main(int argc, char** argv) {
  using namespace slide;

  const Index n = argc > 1 ? static_cast<Index>(std::atoi(argv[1])) : 20'000;
  const Index dim = argc > 2 ? static_cast<Index>(std::atoi(argv[2])) : 128;
  const int queries = argc > 3 ? std::atoi(argv[3]) : 200;
  constexpr int kTopK = 10;

  // Collection: random unit vectors (cosine similarity search).
  Rng rng(2024);
  std::vector<float> rows(static_cast<std::size_t>(n) * dim);
  for (Index r = 0; r < n; ++r) {
    float norm = 0.0f;
    float* row = rows.data() + static_cast<std::size_t>(r) * dim;
    for (Index d = 0; d < dim; ++d) {
      row[d] = rng.normal();
      norm += row[d] * row[d];
    }
    norm = std::sqrt(norm);
    for (Index d = 0; d < dim; ++d) row[d] /= norm;
  }

  // Index with Simhash (K=7, L=32).
  HashFamilyConfig family;
  family.kind = HashFamilyKind::kSimhash;
  family.k = 7;
  family.l = 32;
  family.dim = dim;
  ThreadPool pool(hardware_threads());
  LshTableGroup index(make_hash_family(family),
                      {.range_pow = 14, .bucket_size = 64});
  WallTimer build_timer;
  index.build_from_rows(rows.data(), dim, n, &pool);
  std::printf("indexed %u vectors (dim %u) in %.2fs, tables use %.1f MB\n",
              n, dim, build_timer.seconds(),
              static_cast<double>(index.memory_bytes()) / (1 << 20));

  auto brute_force = [&](const float* q) {
    std::vector<std::pair<float, Index>> scored(n);
    for (Index i = 0; i < n; ++i) {
      scored[i] = {simd::dot(q, rows.data() + static_cast<std::size_t>(i) * dim,
                             dim),
                   i};
    }
    std::partial_sort(scored.begin(), scored.begin() + kTopK, scored.end(),
                      std::greater<>());
    std::vector<Index> top(kTopK);
    for (int k = 0; k < kTopK; ++k) top[static_cast<std::size_t>(k)] = scored[static_cast<std::size_t>(k)].second;
    return top;
  };

  auto lsh_search = [&](const float* q, VisitedSet& visited, Rng& qrng) {
    std::vector<std::uint32_t> keys(static_cast<std::size_t>(index.l()));
    index.query_keys_dense(q, keys);
    std::vector<std::span<const Index>> buckets;
    index.buckets(keys, buckets);
    std::vector<Index> candidates;
    SamplingConfig sampling;
    sampling.strategy = SamplingStrategy::kTopK;  // rank by bucket frequency
    sampling.target = 512;
    sample_neurons(sampling, buckets, visited, qrng, candidates);
    // Re-rank candidates by exact dot product.
    std::vector<std::pair<float, Index>> scored;
    scored.reserve(candidates.size());
    for (Index c : candidates) {
      scored.emplace_back(
          simd::dot(q, rows.data() + static_cast<std::size_t>(c) * dim, dim),
          c);
    }
    const std::size_t take = std::min<std::size_t>(kTopK, scored.size());
    std::partial_sort(scored.begin(),
                      scored.begin() + static_cast<std::ptrdiff_t>(take),
                      scored.end(), std::greater<>());
    std::vector<Index> top(take);
    for (std::size_t k = 0; k < take; ++k) top[k] = scored[k].second;
    return top;
  };

  // Queries: perturbed copies of stored vectors (so true neighbors exist).
  VisitedSet visited(n);
  Rng qrng(7);
  double recall = 0.0;
  double brute_ms = 0.0, lsh_ms = 0.0;
  for (int q = 0; q < queries; ++q) {
    const Index base = qrng.uniform(n);
    std::vector<float> query(
        rows.begin() + static_cast<std::ptrdiff_t>(base) * dim,
        rows.begin() + static_cast<std::ptrdiff_t>(base + 1) * dim);
    for (auto& v : query) v += 0.15f * qrng.normal();

    WallTimer bt;
    const auto truth = brute_force(query.data());
    brute_ms += bt.milliseconds();

    WallTimer lt;
    const auto found = lsh_search(query.data(), visited, qrng);
    lsh_ms += lt.milliseconds();

    int hits = 0;
    for (Index f : found) {
      if (std::find(truth.begin(), truth.end(), f) != truth.end()) ++hits;
    }
    recall += static_cast<double>(hits) / kTopK;
  }

  std::printf("queries: %d, top-%d recall vs brute force: %.3f\n", queries,
              kTopK, recall / queries);
  std::printf("latency: brute force %.3f ms/query, LSH %.3f ms/query "
              "(%.1fx faster)\n",
              brute_ms / queries, lsh_ms / queries, brute_ms / lsh_ms);
  return 0;
}
