// Standalone ANN vector search on the retrieval subsystem (src/retrieval/):
// index a collection of unit vectors once per backend — the paper's (K, L)
// LSH tables, a deterministic HNSW graph, and the brute-force oracle — then
// sweep every backend over the same queries and report recall@10 against
// the exact answer plus queries/second. The same Retriever interface drives
// the sampled wide layer inside the network, so the numbers here are the
// candidate-generation tradeoff the layer sees (paper §2's MIPS framing).
//
//   ./build/examples/lsh_topk_search [num_vectors] [dim] [queries]
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "slide/slide.h"

namespace {

using namespace slide;

// Exact top-k by inner product over the full collection (the oracle).
std::vector<Index> brute_force_topk(const retrieval::RowView& rows,
                                    const float* q, int k) {
  std::vector<std::pair<float, Index>> scored(rows.count);
  for (Index i = 0; i < rows.count; ++i)
    scored[i] = {simd::dot(q, rows.row(i), rows.dim), i};
  const auto mid = scored.begin() + std::min<std::ptrdiff_t>(k, scored.size());
  std::partial_sort(scored.begin(), mid, scored.end(), std::greater<>());
  std::vector<Index> top;
  top.reserve(static_cast<std::size_t>(mid - scored.begin()));
  for (auto it = scored.begin(); it != mid; ++it) top.push_back(it->second);
  return top;
}

// One backend's answer: retrieve candidates, re-rank by exact dot product,
// keep the best k.
std::vector<Index> search(const retrieval::Retriever& index,
                          const retrieval::RowView& rows, const float* q,
                          Index budget, int k, VisitedSet& visited,
                          Rng& rng) {
  thread_local std::vector<Index> candidates;
  candidates.clear();
  index.retrieve({}, std::span<const float>(q, rows.dim), budget, rng,
                 visited, candidates);
  std::vector<std::pair<float, Index>> scored;
  scored.reserve(candidates.size());
  for (Index c : candidates)
    scored.emplace_back(simd::dot(q, rows.row(c), rows.dim), c);
  const std::size_t take = std::min<std::size_t>(static_cast<std::size_t>(k),
                                                 scored.size());
  std::partial_sort(scored.begin(),
                    scored.begin() + static_cast<std::ptrdiff_t>(take),
                    scored.end(), std::greater<>());
  std::vector<Index> top(take);
  for (std::size_t i = 0; i < take; ++i) top[i] = scored[i].second;
  return top;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace slide;

  const Index n = argc > 1 ? static_cast<Index>(std::atoi(argv[1])) : 20'000;
  const Index dim = argc > 2 ? static_cast<Index>(std::atoi(argv[2])) : 128;
  const int queries = argc > 3 ? std::atoi(argv[3]) : 200;
  constexpr int kTopK = 10;
  constexpr Index kBudget = 512;  // candidate target per query

  // Collection: clustered unit vectors (~100 per cluster) — the regime ANN
  // indexes exploit. Uniform random vectors in high dimension have no
  // neighborhood structure and every index degenerates to a scan.
  const Index clusters = std::max<Index>(n / 100, 1);
  Rng rng(2024);
  std::vector<float> centers(static_cast<std::size_t>(clusters) * dim);
  for (float& v : centers) v = rng.normal();
  std::vector<float> storage(static_cast<std::size_t>(n) * dim);
  for (Index r = 0; r < n; ++r) {
    const float* center =
        centers.data() + static_cast<std::size_t>(r % clusters) * dim;
    float* row = storage.data() + static_cast<std::size_t>(r) * dim;
    float norm = 0.0f;
    for (Index d = 0; d < dim; ++d) {
      row[d] = center[d] + 0.35f * rng.normal();
      norm += row[d] * row[d];
    }
    norm = std::sqrt(norm);
    for (Index d = 0; d < dim; ++d) row[d] /= norm;
  }
  const retrieval::RowView rows{storage.data(), dim, n};

  // Queries: perturbed copies of stored vectors (true neighbors exist).
  Rng qrng(7);
  std::vector<std::vector<float>> query_set;
  query_set.reserve(static_cast<std::size_t>(queries));
  for (int q = 0; q < queries; ++q) {
    const Index base = qrng.uniform(n);
    std::vector<float> query(rows.row(base), rows.row(base) + dim);
    for (auto& v : query) v += 0.1f * qrng.normal();
    query_set.push_back(std::move(query));
  }

  ThreadPool pool(hardware_threads());

  // The three backends over the same rows. LSH: Simhash (K=7, L=32) with
  // frequency-ranked sampling; HNSW: library defaults.
  HashFamilyConfig family;
  family.kind = HashFamilyKind::kSimhash;
  family.k = 7;
  family.l = 32;
  family.dim = dim;
  SamplingConfig sampling;
  sampling.strategy = SamplingStrategy::kTopK;
  sampling.target = kBudget;

  retrieval::LshRetriever lsh(make_hash_family(family),
                              {.range_pow = 14, .bucket_size = 64}, sampling,
                              rows, /*seed=*/42);
  retrieval::ExactRetriever exact(rows);
  retrieval::HnswRetriever hnsw(rows, retrieval::HnswConfig{}, /*seed=*/42);

  // Per-backend candidate budget: LSH needs a generous target (bucket
  // frequencies are noisy), HNSW's beam already ranks — asking for more
  // than ef_search just widens the beam and costs qps.
  struct Backend {
    const char* name;
    retrieval::Retriever* index;
    Index budget;
  };
  const Backend backends[] = {
      {"exact", &exact, n},
      {"lsh", &lsh, kBudget},
      {"hnsw", &hnsw,
       static_cast<Index>(retrieval::HnswConfig{}.ef_search)}};

  // Oracle answers once, up front.
  std::vector<std::vector<Index>> truth;
  truth.reserve(query_set.size());
  for (const auto& q : query_set)
    truth.push_back(brute_force_topk(rows, q.data(), kTopK));

  std::printf("collection: %u vectors, dim %u, %d queries, top-%d\n\n", n,
              dim, queries, kTopK);
  std::printf("%-8s %10s %12s %10s %12s\n", "backend", "build(s)",
              "recall@10", "qps", "index MB");

  VisitedSet visited(n);
  for (const Backend& b : backends) {
    WallTimer build_timer;
    b.index->rebuild(&pool);
    const double build_s = build_timer.seconds();

    Rng srng(99);
    double recall = 0.0;
    WallTimer query_timer;
    for (std::size_t q = 0; q < query_set.size(); ++q) {
      const auto found = search(*b.index, rows, query_set[q].data(), b.budget,
                                kTopK, visited, srng);
      recall += recall_at_k(found, truth[q]);
    }
    const double seconds = query_timer.seconds();
    std::printf("%-8s %10.2f %12.3f %10.0f %12.1f\n", b.name, build_s,
                recall / static_cast<double>(query_set.size()),
                static_cast<double>(query_set.size()) / seconds,
                static_cast<double>(b.index->memory_bytes()) / (1 << 20));
  }

  std::printf(
      "\nexact is the oracle (recall 1.0 by construction); lsh and hnsw\n"
      "trade recall for qps. Raise ef_search (hnsw) or the candidate\n"
      "budget (lsh) to buy recall back.\n");
  return 0;
}
