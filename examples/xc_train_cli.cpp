// Command-line trainer for real Extreme Classification Repository files —
// the tool to reproduce the paper's experiments on the actual
// Delicious-200K / Amazon-670K downloads.
//
//   ./build/examples/xc_train_cli TRAIN.txt TEST.txt [options]
//     --hash simhash|wta|dwta|doph   (default simhash; paper: simhash for
//                                     Delicious, dwta for Amazon)
//     --k N          meta-hash width                    (default 9)
//     --tables N     number of hash tables L            (default 50)
//     --active N     target active neurons per sample   (default labels/200)
//     --hidden N     hidden width                       (default 128)
//     --batch N      batch size                         (default 128)
//     --lr F         Adam learning rate                 (default 1e-4)
//     --iters N      training iterations                (default 3 epochs)
//     --threads N    CPU threads                        (default all)
//     --save PATH    write a checkpoint after training
//     --load PATH    initialize from a checkpoint
//
// Without file arguments it runs on a synthetic delicious-like dataset so
// the binary is self-demonstrating.
#include <cstdio>
#include <cstring>
#include <string>

#include "slide/slide.h"

using namespace slide;

namespace {

struct Options {
  std::string train_path;
  std::string test_path;
  HashFamilyKind hash = HashFamilyKind::kSimhash;
  int k = 9;
  int tables = 50;
  Index active = 0;  // 0 = auto
  Index hidden = 128;
  int batch = 128;
  float lr = 1e-4f;
  long iters = 0;  // 0 = 3 epochs
  int threads = 0;
  std::string save_path;
  std::string load_path;
};

HashFamilyKind parse_hash(const std::string& name) {
  if (name == "simhash") return HashFamilyKind::kSimhash;
  if (name == "wta") return HashFamilyKind::kWta;
  if (name == "dwta") return HashFamilyKind::kDwta;
  if (name == "doph") return HashFamilyKind::kDoph;
  throw Error("unknown hash family: " + name);
}

Options parse(int argc, char** argv) {
  Options opt;
  int positional = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      SLIDE_CHECK(i + 1 < argc, "missing value for " + arg);
      return argv[++i];
    };
    if (arg == "--hash") {
      opt.hash = parse_hash(next());
    } else if (arg == "--k") {
      opt.k = std::stoi(next());
    } else if (arg == "--tables") {
      opt.tables = std::stoi(next());
    } else if (arg == "--active") {
      opt.active = static_cast<Index>(std::stoul(next()));
    } else if (arg == "--hidden") {
      opt.hidden = static_cast<Index>(std::stoul(next()));
    } else if (arg == "--batch") {
      opt.batch = std::stoi(next());
    } else if (arg == "--lr") {
      opt.lr = std::stof(next());
    } else if (arg == "--iters") {
      opt.iters = std::stol(next());
    } else if (arg == "--threads") {
      opt.threads = std::stoi(next());
    } else if (arg == "--save") {
      opt.save_path = next();
    } else if (arg == "--load") {
      opt.load_path = next();
    } else if (arg.rfind("--", 0) == 0) {
      throw Error("unknown option: " + arg);
    } else if (positional == 0) {
      opt.train_path = arg;
      ++positional;
    } else if (positional == 1) {
      opt.test_path = arg;
      ++positional;
    } else {
      throw Error("unexpected argument: " + arg);
    }
  }
  return opt;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  try {
    opt = parse(argc, argv);
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  if (opt.threads <= 0) opt.threads = hardware_threads();

  Dataset train, test;
  if (opt.train_path.empty()) {
    std::printf("[data] no files given — using a synthetic delicious-like "
                "dataset (tiny)\n");
    auto synthetic = make_synthetic_xc(delicious_like(Scale::kTiny));
    train = std::move(synthetic.train);
    test = std::move(synthetic.test);
  } else {
    std::printf("[data] reading %s ...\n", opt.train_path.c_str());
    train = read_xc_file(opt.train_path);
    std::printf("[data] reading %s ...\n", opt.test_path.c_str());
    test = read_xc_file(opt.test_path);
  }
  std::printf("%s\n%s\n", describe(train.stats(), "train").c_str(),
              describe(test.stats(), "test").c_str());

  if (opt.active == 0)
    opt.active = std::max<Index>(32, train.label_dim() / 200);
  if (opt.iters == 0)
    opt.iters = static_cast<long>(3 * train.size() /
                                  static_cast<std::size_t>(opt.batch));

  HashFamilyConfig family;
  family.kind = opt.hash;
  family.k = opt.k;
  family.l = opt.tables;
  NetworkConfig cfg = make_paper_network(train.feature_dim(),
                                         train.label_dim(), family,
                                         opt.active, opt.hidden);
  cfg.max_batch_size = opt.batch;
  cfg.layers[0].table.range_pow = 14;

  Network network(cfg, opt.threads);
  std::printf("[net] %zu parameters, %s K=%d L=%d, %u active of %u classes "
              "(%.2f%%), %d threads\n",
              network.num_parameters(), to_string(opt.hash), opt.k,
              opt.tables, opt.active, train.label_dim(),
              100.0 * opt.active / train.label_dim(), opt.threads);

  TrainerConfig tcfg;
  tcfg.batch_size = opt.batch;
  tcfg.num_threads = opt.threads;
  tcfg.learning_rate = opt.lr;
  Trainer trainer(network, tcfg);

  if (!opt.load_path.empty()) {
    std::printf("[init] loading checkpoint %s\n", opt.load_path.c_str());
    load_weights_file(network, opt.load_path, &trainer.pool());
  }

  WallTimer timer;
  trainer.train(train, opt.iters, [&](long it) {
    const double p1 = evaluate_p_at_1(network, test, trainer.pool(),
                                      {.exact = true, .max_samples = 2'000});
    std::printf("  iter %6ld | %8.1fs | P@1 %.4f | active %.2f%%\n", it,
                timer.seconds(), p1,
                100.0 * network.output_layer().average_active_fraction());
  }, std::max<long>(1, opt.iters / 10));

  const double p1 = evaluate_p_at_1(network, test, trainer.pool(),
                                    {.exact = true, .max_samples = 10'000});
  const double p5 = evaluate_p_at_k(network, test, trainer.pool(), 5,
                                    {.exact = true, .max_samples = 10'000});
  std::printf("[final] P@1 %.4f  P@5 %.4f  train %.1fs\n", p1, p5,
              timer.seconds());

  if (!opt.save_path.empty()) {
    save_weights_file(network, opt.save_path);
    std::printf("[save] checkpoint written to %s\n", opt.save_path.c_str());
  }
  return 0;
}
