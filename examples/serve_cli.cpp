// Closed-loop load driver for the inference serving engine.
//
//   ./build/examples/serve_cli [options]
//     --workers N     engine worker threads            (default 2)
//     --clients N     closed-loop client threads       (default 4)
//     --batch N       micro-batch size cap             (default 16)
//     --wait US       micro-batch deadline, usec       (default 200)
//     --queue N       admission queue capacity         (default 4096)
//     --topk N        labels returned per request      (default 5)
//     --seconds S     seconds of load per phase        (default 3)
//     --iters N       pre-serve training iterations    (default 300)
//     --exact         exact (all-class) scoring instead of LSH sampling
//     --precision P   serving precision: fp32 | bf16 | fp16 | int8
//                     (default fp32). Quantized tiers boot the snapshot
//                     with weight mirrors — bf16/fp16 read half the weight
//                     bytes, int8 roughly a quarter (the footprint report
//                     below shows the exact numbers) — while
//                     training/checkpoints stay fp32. int8 scores through
//                     AVX-512 VNNI when the CPU has it (the banner shows
//                     the active kernel path) and downgrades gracefully
//                     to vpmaddubsw / scalar otherwise.
//     --dist N        serve the wide output layer from N shard worker
//                     threads over loopback TCP (src/dist/): the snapshot
//                     boots a DistributedSampledLayer that pushes the
//                     checkpoint weights to the workers, and the stats
//                     table grows bytes-on-wire + shard-health rows
//     --churn         phase 2 churns the label space through the engine's
//                     online-update API instead of the train-and-swap:
//                     every ~200ms a delta appends fresh output labels,
//                     tombstones the ones appended two ticks earlier,
//                     trains a few live samples against the fp32 master,
//                     and republishes — all while the closed-loop load
//                     keeps running (incompatible with --dist: the shard
//                     fleet accepts one coordinator connection, so the
//                     publish-clone path cannot re-dial it)
//     --metrics-port P  serve Prometheus text-format metrics on
//                     http://127.0.0.1:P/metrics while load runs (P = 0
//                     picks an ephemeral port; the bound port is printed)
//     --metrics-dump  print the Prometheus scrape body to stdout at exit
//
// Clients rotate through the priority lanes (interactive/default/batch),
// so the per-lane serving metrics are live in the scrape.
//
// The driver trains a SLIDE model on a synthetic Delicious-like XC
// dataset (SLIDE_BENCH_SCALE widens it), checkpoints it, boots a
// ModelStore + InferenceEngine from the checkpoint, then runs two load
// phases: steady-state, and a phase with a concurrent train-and-serve
// hot-swap (the trainer keeps improving the model, the store publishes a
// fresh snapshot mid-traffic — zero pause, zero failed requests).
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "slide/slide.h"
#include "sys/cpu_features.h"

using namespace slide;

namespace {

struct Options {
  int workers = 2;
  int clients = 4;
  int batch = 16;
  long wait_us = 200;
  std::size_t queue = 4096;
  int topk = 5;
  double seconds = 3.0;
  long iters = 300;
  bool exact = false;
  Precision precision = Precision::kFP32;
  int dist = 0;
  bool churn = false;
  int metrics_port = -1;  // -1 = no metrics listener
  bool metrics_dump = false;
};

Options parse(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) throw Error("missing value for " + arg);
      return argv[++i];
    };
    if (arg == "--workers") opt.workers = std::stoi(next());
    else if (arg == "--clients") opt.clients = std::stoi(next());
    else if (arg == "--batch") opt.batch = std::stoi(next());
    else if (arg == "--wait") opt.wait_us = std::stol(next());
    else if (arg == "--queue") opt.queue = std::stoul(next());
    else if (arg == "--topk") opt.topk = std::stoi(next());
    else if (arg == "--seconds") opt.seconds = std::stod(next());
    else if (arg == "--iters") opt.iters = std::stol(next());
    else if (arg == "--exact") opt.exact = true;
    else if (arg == "--precision") opt.precision = parse_precision(next().c_str());
    else if (arg == "--dist") opt.dist = std::stoi(next());
    else if (arg == "--churn") opt.churn = true;
    else if (arg == "--metrics-port") opt.metrics_port = std::stoi(next());
    else if (arg == "--metrics-dump") opt.metrics_dump = true;
    else throw Error("unknown option: " + arg);
  }
  SLIDE_CHECK(opt.workers > 0, "--workers must be positive");
  SLIDE_CHECK(opt.clients > 0, "--clients must be positive");
  SLIDE_CHECK(opt.batch > 0, "--batch must be positive");
  SLIDE_CHECK(opt.wait_us >= 0, "--wait must be non-negative");
  SLIDE_CHECK(opt.queue > 0, "--queue must be positive");
  SLIDE_CHECK(opt.topk > 0, "--topk must be positive");
  SLIDE_CHECK(opt.seconds > 0, "--seconds must be positive");
  SLIDE_CHECK(opt.iters >= 0, "--iters must be non-negative");
  SLIDE_CHECK(opt.dist >= 0, "--dist must be non-negative");
  SLIDE_CHECK(!(opt.churn && opt.dist > 0),
              "--churn is incompatible with --dist (see usage comment)");
  SLIDE_CHECK(opt.metrics_port >= -1 && opt.metrics_port <= 65535,
              "--metrics-port must be a port number (0 = ephemeral)");
  return opt;
}

/// Runs `clients` closed-loop threads against the engine for `seconds`.
/// Each client waits for its previous request before issuing the next —
/// the classic closed-loop driver, so offered load tracks service rate.
struct LoadResult {
  std::uint64_t completed = 0;
  std::uint64_t retried = 0;  // backpressure rejections (resubmitted)
  std::uint64_t shed = 0;     // typed ShedError resolutions (lane eviction)
  std::uint64_t invalid = 0;  // empty/out-of-range results (must stay 0)
  double wall_seconds = 0.0;
};

// `output_dim` is atomic so the --churn phase can widen the validity bound
// as online updates append labels mid-load.
LoadResult run_load(InferenceEngine& engine, const Dataset& queries,
                    int clients, double seconds, int topk,
                    const std::atomic<Index>& output_dim) {
  std::atomic<bool> running{true};
  std::atomic<std::uint64_t> completed{0}, retried{0}, shed{0}, invalid{0};
  std::vector<std::thread> threads;
  WallTimer timer;
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      std::size_t i = static_cast<std::size_t>(c);
      // Rotate lanes across clients so per-lane metrics carry real traffic.
      const Priority lane = static_cast<Priority>(c % kNumLanes);
      while (running.load(std::memory_order_relaxed)) {
        auto f = engine.submit(queries[i % queries.size()].features,
                               {.top_k = topk, .priority = lane});
        ++i;
        if (!f.has_value()) {
          retried.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        try {
          const Prediction p = f->get();
          const bool ok =
              !p.labels.empty() &&
              p.labels[0] < output_dim.load(std::memory_order_relaxed);
          (ok ? completed : invalid).fetch_add(1, std::memory_order_relaxed);
        } catch (const ShedError&) {
          // Policy, not failure: a tiny --queue with mixed lanes evicts
          // lower-priority requests. Count it and resubmit.
          shed.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  while (timer.seconds() < seconds)
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  running.store(false);
  for (auto& t : threads) t.join();
  return {completed.load(), retried.load(), shed.load(), invalid.load(),
          timer.seconds()};
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  Scale scale = Scale::kTiny;
  try {
    opt = parse(argc, argv);
    const char* scale_env = std::getenv("SLIDE_BENCH_SCALE");
    if (scale_env != nullptr) scale = parse_scale(scale_env);
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }

  std::printf("== serve_cli: SLIDE inference serving demo ==\n");

  // 1. Train a model to serve.
  const SyntheticDataset data = make_synthetic_xc(delicious_like(scale));
  std::printf("%s\n", describe(data.train.stats(), "train").c_str());
  HashFamilyConfig family;
  family.kind = HashFamilyKind::kSimhash;
  family.k = 9;
  family.l = 50;
  family.bin_size = 8;
  NetworkConfig net_cfg = make_paper_network(
      data.train.feature_dim(), data.train.label_dim(), family,
      /*sampling_target=*/std::max<Index>(32, data.train.label_dim() / 50),
      /*hidden_units=*/64);
  net_cfg.max_batch_size = 128;
  net_cfg.layers[0].table.range_pow = 12;
  net_cfg.layers[0].table.bucket_size = 128;
  Network network(net_cfg, hardware_threads());
  TrainerConfig train_cfg;
  train_cfg.batch_size = 128;
  train_cfg.learning_rate = 1e-3f;
  Trainer trainer(network, train_cfg);
  std::printf("[train] %ld iterations...\n", opt.iters);
  trainer.train(data.train, opt.iters);
  network.rebuild_all(&trainer.pool());

  // 2. Checkpoint, then boot the serving stack from the checkpoint — the
  //    same path a standalone server process would take.
  const std::string checkpoint =
      (std::filesystem::temp_directory_path() / "serve_cli_model.slide")
          .string();
  save_weights_file(network, checkpoint);
  // The serve-side precision knob: the same fp32 checkpoint boots either
  // an fp32 snapshot or a bf16-quantized one (half the scored weight
  // bytes); the trainer's network is untouched either way.
  NetworkConfig serve_net_cfg = net_cfg;
  serve_net_cfg.precision = opt.precision;
  // --dist N: host N shard workers on background threads and point the
  // serving config's wide layer at them. The checkpoint loader then builds
  // a DistributedSampledLayer and pushes each shard's weights to its worker
  // (kSetShardWeights) — the trainer's parameters, served model-parallel.
  // Declared before the store so the workers outlive the layer's shutdown.
  std::vector<std::unique_ptr<dist::InProcessWorker>> shard_workers;
  if (opt.dist > 0) {
    std::vector<std::string> endpoints;
    for (int s = 0; s < opt.dist; ++s) {
      shard_workers.push_back(
          std::make_unique<dist::InProcessWorker>("tcp:127.0.0.1:0"));
      endpoints.push_back(shard_workers.back()->endpoint());
    }
    for (LayerSpec& spec : serve_net_cfg.layers) {
      if (!spec.hashed) continue;
      spec.shards = 0;
      spec.endpoints = endpoints;
    }
    std::printf("[dist] %d shard workers on loopback TCP\n", opt.dist);
  }
  auto store = ModelStore::from_checkpoint_file(serve_net_cfg, checkpoint);
  std::printf("[store] loaded %s (version %llu, precision %s, simd %s)\n",
              checkpoint.c_str(),
              static_cast<unsigned long long>(store->version()),
              to_string(opt.precision),
              simd::to_string(simd::active_level()));
  {
    const CpuFeatures& cpu = cpu_features();
    std::printf(
        "[simd] cpu: avx2=%d avx512f=%d avx512vnni=%d f16c=%d | kernel "
        "paths: int8=%s fp16=%s\n",
        cpu.avx2 ? 1 : 0, cpu.avx512f ? 1 : 0, cpu.avx512vnni ? 1 : 0,
        cpu.f16c ? 1 : 0, simd::backend().i8_path, simd::backend().f16_path);
  }
  {
    const MemoryFootprint f =
        store->current()->network->memory_footprint();
    const double mb = 1.0 / (1 << 20);
    std::printf(
        "[store] snapshot footprint: scoring path reads %.2f MB of weights "
        "(fp32 masters %.2f MB, %s mirrors %.2f MB [%.2f MB hugepage-"
        "backed], optimizer state %.2f MB)\n",
        static_cast<double>(f.inference_weight_bytes) * mb,
        static_cast<double>(f.master_weight_bytes) * mb,
        to_string(opt.precision),
        static_cast<double>(f.mirror_bytes) * mb,
        static_cast<double>(f.mirror_hugepage_bytes) * mb,
        static_cast<double>(f.optimizer_bytes) * mb);
    if (opt.precision != Precision::kFP32) {
      std::printf(
          "[store] %s serving reads %.0f%% of the fp32 scoring bytes\n",
          to_string(opt.precision),
          100.0 * static_cast<double>(f.inference_weight_bytes) /
              static_cast<double>(f.master_weight_bytes));
    }
  }

  ServeConfig serve_cfg;
  serve_cfg.num_workers = opt.workers;
  serve_cfg.max_batch = opt.batch;
  serve_cfg.max_wait_us = opt.wait_us;
  serve_cfg.queue_capacity = opt.queue;
  serve_cfg.default_top_k = opt.topk;
  serve_cfg.exact = opt.exact;
  InferenceEngine engine(store, serve_cfg);

  // Optional Prometheus scrape endpoint, alive for the whole load run.
  std::unique_ptr<MetricsServer> metrics;
  if (opt.metrics_port >= 0) {
    metrics = std::make_unique<MetricsServer>(
        opt.metrics_port, [&engine] { return render_prometheus(engine.stats()); });
    std::printf("[metrics] http://127.0.0.1:%d/metrics\n", metrics->port());
  }

  // 3. Phase 1: steady-state closed-loop load.
  std::atomic<Index> output_bound{network.output_dim()};
  std::printf("\n[phase 1] %d clients, %.1fs steady-state load\n",
              opt.clients, opt.seconds);
  LoadResult steady = run_load(engine, data.test, opt.clients, opt.seconds,
                               opt.topk, output_bound);
  std::printf("  %.0f qps, %llu retried (backpressure), %llu shed, "
              "%llu invalid\n",
              static_cast<double>(steady.completed) / steady.wall_seconds,
              static_cast<unsigned long long>(steady.retried),
              static_cast<unsigned long long>(steady.shed),
              static_cast<unsigned long long>(steady.invalid));

  // 4. Phase 2: the same load with either a train-and-serve hot-swap in
  //    the middle (default) or, with --churn, continuous label churn
  //    through the engine's online-update API: traffic never pauses while
  //    the label space grows, retires, trains, and republishes.
  std::atomic<bool> churning{opt.churn};
  std::thread swapper([&] {
    if (opt.churn) {
      // The trained in-process network plays the fp32 master role. The
      // aliasing shared_ptr is safe: `network` outlives the engine.
      auto master = std::shared_ptr<Network>(&network, [](Network*) {});
      OnlineUpdateConfig ocfg;
      ocfg.publish_every = 1;
      ocfg.rebuild_threads = 1;
      engine.enable_online_updates(master, ocfg);
      const auto train_samples = data.train.samples();
      std::vector<Index> pending;  // appended ids not yet retired
      std::size_t cursor = 0;
      int ticks = 0;
      while (churning.load(std::memory_order_relaxed)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(200));
        if (!churning.load(std::memory_order_relaxed)) break;
        OnlineDelta delta;
        delta.add_units = 1;
        const Index first_new = network.output_dim();
        if (pending.size() >= 2) {
          delta.retire.assign(pending.begin(), pending.begin() + 1);
          pending.erase(pending.begin());
        }
        delta.samples.assign(train_samples.begin() + cursor,
                             train_samples.begin() + cursor + 8);
        cursor = (cursor + 8) % (train_samples.size() - 8);
        // Raise the validity bound BEFORE the update publishes: a client
        // may see the grown snapshot the instant update() swaps it in.
        output_bound.store(first_new + delta.add_units,
                           std::memory_order_relaxed);
        engine.update(delta);
        pending.push_back(first_new);
        ++ticks;
      }
      std::printf("  [churn] %d online-update ticks "
                  "(add 1 / retire 1 / train 8 / republish each)\n",
                  ticks);
      return;
    }
    // The shard workers accept exactly one coordinator connection, so the
    // distributed snapshot cannot be hot-swapped from here — phase 2 then
    // measures steady-state under the same load instead.
    if (opt.dist > 0) {
      std::printf("  [swap] skipped (--dist serves a fixed worker fleet)\n");
      return;
    }
    std::this_thread::sleep_for(
        std::chrono::milliseconds(static_cast<long>(opt.seconds * 300)));
    trainer.train(data.train, std::max(50L, opt.iters / 4));
    network.rebuild_all(&trainer.pool());
    const std::uint64_t v = publish_clone(*store, network, opt.precision);
    std::printf("  [swap] published snapshot version %llu mid-traffic\n",
                static_cast<unsigned long long>(v));
  });
  std::printf("\n[phase 2] load + %s\n",
              opt.churn ? "concurrent label churn (online updates)"
                        : "concurrent train-and-swap");
  LoadResult swapped = run_load(engine, data.test, opt.clients, opt.seconds,
                                opt.topk, output_bound);
  churning.store(false);
  swapper.join();
  std::printf("  %.0f qps, %llu retried, %llu shed, "
              "%llu invalid (must be 0)\n",
              static_cast<double>(swapped.completed) / swapped.wall_seconds,
              static_cast<unsigned long long>(swapped.retried),
              static_cast<unsigned long long>(swapped.shed),
              static_cast<unsigned long long>(swapped.invalid));

  // 5. Report.
  std::printf("\n== engine stats ==\n");
  engine.print_stats(std::cout);
  if (opt.metrics_dump) {
    std::printf("\n== prometheus scrape ==\n%s",
                render_prometheus(engine.stats()).c_str());
  }
  metrics.reset();  // stop the listener before the engine it reads
  engine.stop();
  std::filesystem::remove(checkpoint);
  return swapped.invalid == 0 && steady.invalid == 0 ? 0 : 1;
}
