// Extreme multi-label classification — the paper's headline workload
// (Delicious-200K-like), end to end, with a live SLIDE-vs-dense comparison.
//
//   ./build/examples/extreme_classification [scale] [iterations] [threads]
//     scale:      tiny | small | medium | paper   (default: tiny)
//     iterations: training batches per engine      (default: 300)
//     threads:    CPU threads                      (default: all)
//
// To run on the real dataset, download Delicious-200K from the Extreme
// Classification Repository and replace the generator call with
// read_xc_file("deliciousLarge_train.txt").
#include <cstdio>
#include <cstdlib>
#include <string>

#include "slide/slide.h"

int main(int argc, char** argv) {
  using namespace slide;

  const Scale scale = parse_scale(argc > 1 ? argv[1] : "tiny");
  const long iterations = argc > 2 ? std::atol(argv[2]) : 300;
  const int threads = argc > 3 ? std::atoi(argv[3]) : hardware_threads();

  std::printf("== generating delicious-like dataset ==\n");
  const SyntheticDataset data = make_synthetic_xc(delicious_like(scale));
  std::printf("%s\n", describe(data.train.stats(), "train").c_str());

  // SLIDE configuration straight from the paper's hyper-parameter section:
  // Simhash, K=9, L=50, hash tables on the output layer only, batch 128,
  // Adam, rebuild starting at N0=50 iterations with exponential decay.
  const Index label_dim = data.train.label_dim();
  const Index target = std::max<Index>(32, label_dim / 100);  // ~1% active
  HashFamilyConfig family;
  family.kind = HashFamilyKind::kSimhash;
  family.k = 9;
  family.l = 50;
  HashTable::Config slide_table;
  slide_table.range_pow = 14;
  RebuildSchedule slide_rebuild;
  slide_rebuild.initial_period = 50;
  NetworkConfig slide_cfg = NetworkBuilder(data.train.feature_dim())
                                .dense(128)
                                .sampled(label_dim, family, target)
                                .table(slide_table)
                                .rebuild_schedule(slide_rebuild)
                                .max_batch(128)
                                .to_config();

  TrainerConfig tcfg;
  tcfg.batch_size = 128;
  tcfg.num_threads = threads;
  tcfg.learning_rate = 1e-3f;

  std::printf("\n== SLIDE: %u of %u classes active per sample (%.2f%%) ==\n",
              target, label_dim, 100.0 * target / label_dim);
  Network network(slide_cfg, threads);
  Trainer trainer(network, tcfg);
  WallTimer slide_timer;
  trainer.train(data.train, iterations, [&](long it) {
    const double acc = evaluate_p_at_1(network, data.test, trainer.pool(),
                                       {.exact = true, .max_samples = 500});
    std::printf("  iter %5ld | %6.1fs | P@1 %.3f\n", it, slide_timer.seconds(),
                acc);
  }, std::max<long>(1, iterations / 5));
  const double slide_seconds = slide_timer.seconds();
  const double slide_acc = evaluate_p_at_1(
      network, data.test, trainer.pool(), {.exact = true, .max_samples = 2000});

  std::printf("\n== dense full-softmax baseline (TF-CPU role) ==\n");
  DenseNetwork::Config dense_cfg;
  dense_cfg.input_dim = data.train.feature_dim();
  dense_cfg.output_units = label_dim;
  dense_cfg.max_batch_size = 128;
  DenseNetwork dense(dense_cfg, threads);
  ThreadPool pool(threads);
  Batcher batcher(data.train, 128, true, 11);
  WallTimer dense_timer;
  for (long i = 0; i < iterations; ++i) {
    dense.step(data.train, batcher.next(), 1e-3f, pool);
    if ((i + 1) % std::max<long>(1, iterations / 5) == 0) {
      const double acc = evaluate_p_at_1(dense, data.test, pool,
                                         {.max_samples = 500});
      std::printf("  iter %5ld | %6.1fs | P@1 %.3f\n", i + 1,
                  dense_timer.seconds(), acc);
    }
  }
  const double dense_seconds = dense_timer.seconds();
  const double dense_acc =
      evaluate_p_at_1(dense, data.test, pool, {.max_samples = 2000});

  std::printf("\n== summary (%ld iterations each) ==\n", iterations);
  std::printf("SLIDE : %7.1fs  P@1 %.3f  (%.2f%% active neurons)\n",
              slide_seconds, slide_acc,
              100.0 * network.output_layer().average_active_fraction());
  std::printf("dense : %7.1fs  P@1 %.3f\n", dense_seconds, dense_acc);
  std::printf("speedup: %.2fx per-iteration wall time\n",
              dense_seconds / slide_seconds);
  return 0;
}
