// Distributed model parallelism quickstart: train + serve a SLIDE network
// whose wide output layer lives in shard worker processes (src/dist/).
//
//   ./build/examples/dist_quickstart                       # 2 in-process workers
//   ./build/examples/dist_quickstart tcp:127.0.0.1:7001 \
//                                    tcp:127.0.0.1:7002    # external workers
//
// With endpoint arguments the example is the COORDINATOR side of the CI
// multi-process smoke job: launch one `slide_worker --listen <ep>` per
// endpoint first (tools/slide_worker.cpp), then run this against them.
// Without arguments it spins two InProcessWorkers — same protocol, same
// code path, no process management.
//
// The run demonstrates the whole lifecycle and FAILS (nonzero exit) if any
// step regresses:
//   1. train 1 epoch on synthetic XC data through the distributed layer,
//      asserting a convergence floor,
//   2. report bytes-on-wire vs the dense-activation equivalent (the
//      Distributed SLIDE argument: only sparse active sets cross the wire),
//   3. checkpoint per shard (each worker writes its own file), reboot a
//      serving ModelStore from those files, and compare predictions,
//   4. shut the workers down cleanly.
#include <cstdio>
#include <filesystem>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "slide/slide.h"

int main(int argc, char** argv) {
  using namespace slide;

  std::vector<std::string> endpoints;
  for (int i = 1; i < argc; ++i) endpoints.emplace_back(argv[i]);

  // Without endpoint args, host two shard workers on background threads.
  std::vector<std::unique_ptr<dist::InProcessWorker>> local;
  if (endpoints.empty()) {
    for (int s = 0; s < 2; ++s) {
      local.push_back(
          std::make_unique<dist::InProcessWorker>("tcp:127.0.0.1:0"));
      endpoints.push_back(local.back()->endpoint());
    }
  }
  std::printf("coordinator: %zu shard workers\n", endpoints.size());
  for (std::size_t s = 0; s < endpoints.size(); ++s)
    std::printf("  shard %zu @ %s\n", s, endpoints[s].c_str());

  // 1. Train through the distributed output layer. The architecture is the
  //    quickstart's (sparse input -> dense ReLU -> LSH-sampled softmax);
  //    only `.distributed(endpoints)` differs from the single-process
  //    version. Training must be single-threaded: the RPC stream to each
  //    worker is ordered (that ordering is what makes the distributed run
  //    bit-identical to ShardedSampledLayer).
  // The wire-ratio argument needs a genuinely wide output layer: 64 sampled
  // of 8000 labels is 0.8% active — the paper's regime. (The tiny preset's
  // 500 labels would put the active set alone at 12.8% of dense.)
  SyntheticConfig data_cfg = delicious_like(Scale::kTiny);
  data_cfg.feature_dim = 10'000;
  data_cfg.label_dim = 8'000;
  const SyntheticDataset data = make_synthetic_xc(data_cfg);
  HashFamilyConfig family;
  family.kind = HashFamilyKind::kSimhash;
  family.k = 6;
  family.l = 24;
  HashTable::Config table;
  table.range_pow = 10;

  NetworkBuilder builder(data.train.feature_dim());
  builder.dense(32)
      .sampled(data.train.label_dim(), family, /*sampling_target=*/64)
      .table(table)
      .distributed(endpoints);
  Network network = builder.max_batch(64).build(/*max_threads=*/1);

  auto& dl = dynamic_cast<dist::DistributedSampledLayer&>(
      network.stack(network.stack_depth() - 1));
  const dist::WireCounters before = dl.wire_counters();

  TrainerConfig train_cfg;
  train_cfg.batch_size = 64;
  train_cfg.num_threads = 1;
  train_cfg.learning_rate = 5e-3f;
  Trainer trainer(network, train_cfg);

  const long iterations =
      static_cast<long>(data.train.size() / train_cfg.batch_size);  // 1 epoch
  WallTimer timer;
  trainer.train(data.train, iterations);
  // Snapshot wire counters before evaluation: exact P@1 intentionally ships
  // every unit's score back (dense), which is not the training hot path the
  // 10% budget is about.
  const dist::WireCounters after = dl.wire_counters();
  const double p1 = evaluate_p_at_1(network, data.test, trainer.pool(),
                                    {.exact = true, .max_samples = 300});
  std::printf("1 epoch (%ld iters) in %.1fs | exact P@1 %.3f\n", iterations,
              timer.seconds(), p1);
  // Convergence floor: the synthetic task reaches ~0.9 in one epoch; 20x
  // random chance (500 labels) catches a layer that stopped learning.
  const double floor = 20.0 / static_cast<double>(data.train.label_dim());
  if (p1 < floor) {
    std::fprintf(stderr, "FAIL: P@1 %.3f below convergence floor %.3f\n", p1,
                 floor);
    return 1;
  }

  // 2. Bytes on the wire vs the dense equivalent. Dense model parallelism
  //    ships every output activation + error both ways; SLIDE ships only
  //    the sampled active set. ISSUE acceptance: sparse <= 10% of dense.
  const std::uint64_t wire_bytes = (after.bytes_sent - before.bytes_sent) +
                                   (after.bytes_received - before.bytes_received);
  const double dense_bytes =
      2.0 * 8 *  // activations out + errors back, {u32 idx, f32 val} each
      static_cast<double>(network.output_dim()) *
      static_cast<double>(iterations) *
      static_cast<double>(train_cfg.batch_size);
  const double ratio = static_cast<double>(wire_bytes) / dense_bytes;
  std::printf("wire: %.2f MB for the epoch (%.1f%% of the dense-activation "
              "equivalent)\n",
              static_cast<double>(wire_bytes) / (1 << 20), 100.0 * ratio);
  if (ratio > 0.10) {
    std::fprintf(stderr, "FAIL: wire bytes %.1f%% of dense (budget 10%%)\n",
                 100.0 * ratio);
    return 1;
  }

  // 3. Checkpoint per shard + coordinator checkpoint, then reboot a serving
  //    store from the files: workers re-read their OWN shard file during
  //    init (weights never cross the wire), the coordinator checkpoint
  //    restores the dense stack below.
  const auto tmp = std::filesystem::temp_directory_path();
  const std::string base = (tmp / "dist_quickstart_shards").string();
  const std::string coord = (tmp / "dist_quickstart_coord.slide").string();
  network.rebuild_all(nullptr);
  dl.flush_maintenance();  // settle + refresh the coordinator-side cache
  dl.checkpoint_shards(base);
  save_weights_file(network, coord);

  InferenceContext ctx(network);
  const SparseVector& probe = data.test[0].features;
  const Index trained_top = network.predict_top1(probe, ctx, /*exact=*/true);

  // Restart the worker fleet (a real cluster restart); the old network must
  // be torn down first so each listener can be reused.
  NetworkConfig boot_cfg = network.config();
  {
    Network teardown = std::move(network);  // shuts workers down at scope end
  }
  if (!local.empty()) {
    std::vector<std::string> fresh;
    local.clear();
    for (int s = 0; s < 2; ++s) {
      local.push_back(
          std::make_unique<dist::InProcessWorker>("tcp:127.0.0.1:0"));
      fresh.push_back(local.back()->endpoint());
    }
    for (LayerSpec& spec : boot_cfg.layers)
      if (!spec.endpoints.empty()) spec.endpoints = fresh;
  } else {
    // External workers accept one coordinator and exit after its shutdown;
    // the multi-process smoke covers the reboot leg via the in-process run.
    std::printf("external workers shut down cleanly; reboot leg runs in "
                "in-process mode\n");
  }

  if (!local.empty()) {
    auto store = ModelStore::from_shard_checkpoints(boot_cfg, base, coord);
    const Index served_top =
        store->current()->network->predict_top1(probe, ctx, /*exact=*/true);
    std::printf("reboot from shard files: predict_top1 %u (trained %u)\n",
                served_top, trained_top);
    if (served_top != trained_top) {
      std::fprintf(stderr, "FAIL: rebooted prediction differs\n");
      return 1;
    }
    ServeConfig serve_cfg;
    serve_cfg.num_workers = 1;  // ordered RPC stream: one engine worker
    serve_cfg.exact = true;
    InferenceEngine engine(store, serve_cfg);
    auto f = engine.submit(probe, {.top_k = 3});
    if (!f.has_value() || f->get().labels.empty()) {
      std::fprintf(stderr, "FAIL: serving through distributed layer\n");
      return 1;
    }
    std::printf("\n== engine stats ==\n");
    engine.print_stats(std::cout);
    engine.stop();
  }

  for (auto& w : local) w->stop();
  const int nshards = static_cast<int>(endpoints.size());
  for (int s = 0; s < nshards; ++s)
    std::filesystem::remove(shard_file_path(base, s, nshards));
  std::filesystem::remove(coord);
  std::printf("OK\n");
  return 0;
}
