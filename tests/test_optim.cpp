// Optimizer tests: Adam against a hand-rolled reference, bias correction,
// lazy sparse updates, and SGD momentum.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "optim/adam.h"
#include "optim/sgd.h"
#include "sys/rng.h"

namespace slide {
namespace {

/// Straightforward reference Adam for one parameter.
struct RefAdam {
  float m = 0.0f, v = 0.0f;
  int t = 0;
  float step(float w, float g, float lr, float b1 = 0.9f, float b2 = 0.999f,
             float eps = 1e-8f) {
    ++t;
    m = b1 * m + (1 - b1) * g;
    v = b2 * v + (1 - b2) * g * g;
    const float mhat = m / (1 - std::pow(b1, static_cast<float>(t)));
    const float vhat = v / (1 - std::pow(b2, static_cast<float>(t)));
    return w - lr * mhat / (std::sqrt(vhat) + eps);
  }
};

TEST(Adam, MatchesReferenceOverManySteps) {
  Adam adam({}, 4);
  std::vector<float> w = {1.0f, -2.0f, 0.5f, 3.0f};
  std::vector<RefAdam> ref(4);
  std::vector<float> ref_w = w;
  Rng rng(1);
  for (int step = 0; step < 50; ++step) {
    std::vector<float> g(4);
    for (auto& x : g) x = rng.normal();
    adam.step_begin();
    adam.update_span(w.data(), g.data(), 0, 4, 0.01f);
    for (int i = 0; i < 4; ++i)
      ref_w[static_cast<std::size_t>(i)] = ref[static_cast<std::size_t>(i)]
          .step(ref_w[static_cast<std::size_t>(i)],
                g[static_cast<std::size_t>(i)], 0.01f);
    for (int i = 0; i < 4; ++i)
      ASSERT_NEAR(w[static_cast<std::size_t>(i)],
                  ref_w[static_cast<std::size_t>(i)], 1e-5f)
          << "step=" << step << " i=" << i;
  }
}

TEST(Adam, FirstStepMovesByRoughlyLearningRate) {
  // Adam's bias-corrected first step is ~lr * sign(g).
  Adam adam({}, 1);
  float w = 0.0f;
  const float g = 0.37f;
  adam.step_begin();
  adam.update_span(&w, &g, 0, 1, 0.01f);
  EXPECT_NEAR(w, -0.01f, 1e-4f);
}

TEST(Adam, UpdateAtMatchesUpdateSpan) {
  Adam a({}, 3), b({}, 3);
  float wa[3] = {1, 2, 3}, wb[3] = {1, 2, 3};
  const float g[3] = {0.1f, -0.2f, 0.3f};
  for (int step = 0; step < 5; ++step) {
    a.step_begin();
    b.step_begin();
    a.update_span(wa, g, 0, 3, 0.05f);
    for (std::size_t i = 0; i < 3; ++i) b.update_at(&wb[i], g[i], i, 0.05f);
    for (std::size_t i = 0; i < 3; ++i) ASSERT_NEAR(wa[i], wb[i], 1e-6f);
  }
}

TEST(Adam, LazySparseUpdatesOnlyTouchTheirSpan) {
  Adam adam({}, 10);
  std::vector<float> w(10, 1.0f);
  const std::vector<float> g(10, 0.5f);
  adam.step_begin();
  adam.update_span(w.data() + 3, g.data(), 3, 4, 0.1f);  // params 3..6
  for (int i = 0; i < 10; ++i) {
    if (i >= 3 && i < 7) {
      EXPECT_NE(w[static_cast<std::size_t>(i)], 1.0f);
    } else {
      EXPECT_EQ(w[static_cast<std::size_t>(i)], 1.0f);
    }
  }
}

TEST(Adam, ResetClearsState) {
  Adam adam({}, 2);
  float w[2] = {1, 1};
  const float g[2] = {1, 1};
  adam.step_begin();
  adam.update_span(w, g, 0, 2, 0.1f);
  adam.reset();
  EXPECT_EQ(adam.step(), 0);
  // After reset, behaves like a fresh optimizer.
  Adam fresh({}, 2);
  float wf[2] = {2, 2}, wr[2] = {2, 2};
  adam.step_begin();
  fresh.step_begin();
  adam.update_span(wr, g, 0, 2, 0.1f);
  fresh.update_span(wf, g, 0, 2, 0.1f);
  EXPECT_NEAR(wr[0], wf[0], 1e-7f);
}

TEST(Adam, ZeroGradientStillDecaysMoments) {
  // A weight with momentum keeps moving on zero gradient (m decays slowly).
  Adam adam({}, 1);
  float w = 0.0f;
  float g = 1.0f;
  adam.step_begin();
  adam.update_span(&w, &g, 0, 1, 0.01f);
  const float after_first = w;
  g = 0.0f;
  adam.step_begin();
  adam.update_span(&w, &g, 0, 1, 0.01f);
  EXPECT_LT(w, after_first);  // still moving in -g direction
}

TEST(Sgd, PlainStepWithoutMomentum) {
  Sgd sgd({.momentum = 0.0f}, 2);
  float w[2] = {1.0f, 2.0f};
  const float g[2] = {0.5f, -0.5f};
  sgd.update_span(w, g, 0, 2, 0.1f);
  EXPECT_NEAR(w[0], 0.95f, 1e-6f);
  EXPECT_NEAR(w[1], 2.05f, 1e-6f);
}

TEST(Sgd, MomentumAccumulates) {
  Sgd sgd({.momentum = 0.9f}, 1);
  float w = 0.0f;
  const float g = 1.0f;
  sgd.update_span(&w, &g, 0, 1, 0.1f);
  EXPECT_NEAR(w, -0.1f, 1e-6f);  // v = 1
  sgd.update_span(&w, &g, 0, 1, 0.1f);
  EXPECT_NEAR(w, -0.29f, 1e-6f);  // v = 1.9
}

TEST(Sgd, UpdateAtMatchesSpan) {
  Sgd a({.momentum = 0.5f}, 2), b({.momentum = 0.5f}, 2);
  float wa[2] = {1, 1}, wb[2] = {1, 1};
  const float g[2] = {0.3f, 0.6f};
  for (int s = 0; s < 4; ++s) {
    a.update_span(wa, g, 0, 2, 0.1f);
    for (std::size_t i = 0; i < 2; ++i) b.update_at(&wb[i], g[i], i, 0.1f);
  }
  EXPECT_NEAR(wa[0], wb[0], 1e-6f);
  EXPECT_NEAR(wa[1], wb[1], 1e-6f);
}

}  // namespace
}  // namespace slide
