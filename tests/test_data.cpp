// Data substrate tests: sparse vectors, datasets, the XC-format reader
// (including round-trips and malformed-input rejection), the synthetic
// generators' statistical properties, and batching.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <sstream>

#include "data/batching.h"
#include "sys/rng.h"
#include "data/dataset.h"
#include "data/sparse_vector.h"
#include "data/synthetic.h"
#include "data/xc_reader.h"

namespace slide {
namespace {

// ---------------------------------------------------------------------------
// SparseVector
// ---------------------------------------------------------------------------

TEST(SparseVector, ConstructorSortsAndMergesDuplicates) {
  SparseVector v({5, 2, 5, 1}, {1.0f, 2.0f, 3.0f, 4.0f});
  ASSERT_EQ(v.nnz(), 3u);
  EXPECT_EQ(v.indices()[0], 1u);
  EXPECT_EQ(v.indices()[1], 2u);
  EXPECT_EQ(v.indices()[2], 5u);
  EXPECT_FLOAT_EQ(v.values()[2], 4.0f);  // 1 + 3 merged at index 5
  EXPECT_FLOAT_EQ(v.values()[0], 4.0f);
}

TEST(SparseVector, CompactIsIdempotentOnSortedInput) {
  SparseVector v;
  v.push_back(1, 1.0f);
  v.push_back(5, 2.0f);
  v.compact();
  const SparseVector before = v;
  v.compact();
  EXPECT_EQ(v, before);
}

TEST(SparseVector, L2NormalizeGivesUnitNorm) {
  SparseVector v({0, 3, 7}, {3.0f, 4.0f, 12.0f});
  v.l2_normalize();
  EXPECT_NEAR(v.l2_norm(), 1.0f, 1e-5f);
}

TEST(SparseVector, NormalizeZeroVectorIsNoop) {
  SparseVector v;
  v.l2_normalize();
  EXPECT_EQ(v.nnz(), 0u);
}

TEST(SparseVector, DotDenseMatchesManual) {
  SparseVector v({1, 4}, {2.0f, 3.0f});
  std::vector<float> dense = {10, 20, 30, 40, 50};
  EXPECT_FLOAT_EQ(v.dot_dense(dense.data()), 2 * 20 + 3 * 50);
}

TEST(SparseVector, DenseRoundTrip) {
  SparseVector v({2, 9}, {1.5f, -2.5f});
  const auto dense = to_dense(v, 12);
  ASSERT_EQ(dense.size(), 12u);
  EXPECT_FLOAT_EQ(dense[2], 1.5f);
  EXPECT_FLOAT_EQ(dense[9], -2.5f);
  const SparseVector back = from_dense(dense);
  EXPECT_EQ(back, v);
}

TEST(SparseVector, MismatchedLengthsThrow) {
  EXPECT_THROW(SparseVector({1, 2}, {1.0f}), Error);
}

// ---------------------------------------------------------------------------
// Dataset
// ---------------------------------------------------------------------------

TEST(Dataset, AddValidatesRanges) {
  Dataset d(10, 5);
  Sample ok;
  ok.features = SparseVector({0, 9}, {1.0f, 1.0f});
  ok.labels = {4};
  d.add(ok);
  EXPECT_EQ(d.size(), 1u);

  Sample bad_feature;
  bad_feature.features = SparseVector({10}, {1.0f});
  EXPECT_THROW(d.add(bad_feature), Error);

  Sample bad_label;
  bad_label.labels = {5};
  EXPECT_THROW(d.add(bad_label), Error);
}

TEST(Dataset, AddSortsAndDedupesLabels) {
  Dataset d(4, 10);
  Sample s;
  s.labels = {7, 2, 7, 5};
  d.add(s);
  ASSERT_EQ(d[0].labels.size(), 3u);
  EXPECT_EQ(d[0].labels[0], 2u);
  EXPECT_EQ(d[0].labels[2], 7u);
}

TEST(Dataset, StatsMatchHandComputation) {
  Dataset d(100, 50);
  for (int i = 0; i < 4; ++i) {
    Sample s;
    s.features = SparseVector({0, 1}, {1.0f, 1.0f});
    s.labels = {static_cast<Index>(i)};
    d.add(s);
  }
  const DatasetStats st = d.stats();
  EXPECT_EQ(st.num_samples, 4u);
  EXPECT_DOUBLE_EQ(st.avg_nnz_per_sample, 2.0);
  EXPECT_DOUBLE_EQ(st.feature_density, 0.02);
  EXPECT_DOUBLE_EQ(st.avg_labels_per_sample, 1.0);
}

// ---------------------------------------------------------------------------
// XC reader
// ---------------------------------------------------------------------------

TEST(XcReader, ParsesWellFormedInput) {
  std::istringstream in(
      "2 10 5\n"
      "0,3 1:0.5 7:1.5\n"
      "2 0:2.0\n");
  const Dataset d = read_xc(in, /*l2_normalize=*/false);
  EXPECT_EQ(d.size(), 2u);
  EXPECT_EQ(d.feature_dim(), 10u);
  EXPECT_EQ(d.label_dim(), 5u);
  ASSERT_EQ(d[0].labels.size(), 2u);
  EXPECT_EQ(d[0].labels[1], 3u);
  ASSERT_EQ(d[0].features.nnz(), 2u);
  EXPECT_FLOAT_EQ(d[0].features.values()[1], 1.5f);
  EXPECT_EQ(d[1].labels[0], 2u);
}

TEST(XcReader, HandlesUnlabeledLinesAndCrLf) {
  std::istringstream in(
      "1 4 3\r\n"
      " 0:1.0 2:1.0\r\n");
  const Dataset d = read_xc(in, false);
  EXPECT_TRUE(d[0].labels.empty());
  EXPECT_EQ(d[0].features.nnz(), 2u);
}

TEST(XcReader, NormalizesWhenRequested) {
  std::istringstream in(
      "1 4 3\n"
      "0 0:3.0 1:4.0\n");
  const Dataset d = read_xc(in, true);
  EXPECT_NEAR(d[0].features.l2_norm(), 1.0f, 1e-5f);
}

TEST(XcReader, RejectsMalformedInput) {
  {
    std::istringstream in("not a header\n");
    EXPECT_THROW(read_xc(in), Error);
  }
  {
    std::istringstream in("2 4 3\n0 0:1.0\n");  // declares 2, provides 1
    EXPECT_THROW(read_xc(in), Error);
  }
  {
    std::istringstream in("1 4 3\n0 0=1.0\n");  // bad separator
    EXPECT_THROW(read_xc(in), Error);
  }
  {
    std::istringstream in("1 4 3\n0 9:1.0\n");  // feature out of range
    EXPECT_THROW(read_xc(in), Error);
  }
}

// ---------------------------------------------------------------------------
// XC reader: property/fuzz tests. A seeded generator produces valid files,
// injects one corruption from a catalogue of real-world failure shapes
// (truncated pairs, out-of-range indices, NaN/Inf values, overflow, CRLF,
// empty label tokens, missing lines), and asserts the reader rejects the
// file with a line-numbered slide::Error — never UB, never silent
// acceptance. The ASan+UBSan CI job runs this suite.
// ---------------------------------------------------------------------------

namespace {

struct XcFuzzFile {
  std::string text;
  std::size_t corrupted_line = 0;  // 1-based; 0 = corruption is file-level
};

std::string valid_data_line(Rng& rng, Index feature_dim, Index label_dim) {
  std::string line;
  const int num_labels = static_cast<int>(rng.uniform(3));  // 0..2
  for (int l = 0; l < num_labels; ++l) {
    if (l) line += ',';
    line += std::to_string(rng.uniform(label_dim));
  }
  const int nnz = 1 + static_cast<int>(rng.uniform(4));
  for (int f = 0; f < nnz; ++f) {
    line += ' ';
    line += std::to_string(rng.uniform(feature_dim));
    line += ':';
    line += std::to_string(0.25f * (1.0f + rng.uniform_float()));
  }
  return line;
}

/// Builds a valid file, then applies corruption `kind` (9 = file-level
/// truncation). Every kind must make read_xc throw.
XcFuzzFile make_corrupted(Rng& rng, int kind) {
  const Index feature_dim = 5 + rng.uniform(50);
  const Index label_dim = 2 + rng.uniform(20);
  const std::size_t samples = 1 + rng.uniform(6);
  std::vector<std::string> lines;
  lines.push_back(std::to_string(samples) + ' ' +
                  std::to_string(feature_dim) + ' ' +
                  std::to_string(label_dim));
  for (std::size_t i = 0; i < samples; ++i)
    lines.push_back(valid_data_line(rng, feature_dim, label_dim));

  XcFuzzFile file;
  const std::size_t victim = 2 + rng.uniform(static_cast<Index>(samples));
  file.corrupted_line = victim;
  std::string& line = lines[victim - 1];
  switch (kind) {
    case 0:  // truncated pair: index with no value
      line += ' ' + std::to_string(rng.uniform(feature_dim)) + ':';
      break;
    case 1:  // feature index out of range
      line += ' ' + std::to_string(feature_dim + rng.uniform(1000)) + ":1.0";
      break;
    case 2:  // label out of range
      line = std::to_string(label_dim + rng.uniform(1000)) + " 0:1.0";
      break;
    case 3:  // NaN feature value
      line += " 1:nan";
      break;
    case 4:  // Inf feature value
      line += rng.uniform(2) ? " 1:inf" : " 1:-inf";
      break;
    case 5:  // bad pair separator
      line += " 1=0.5";
      break;
    case 6:  // empty label token (double comma)
      line = "0,," + std::to_string(label_dim - 1) + " 0:1.0";
      break;
    case 7:  // negative feature index
      line += " -3:1.0";
      break;
    case 8:  // integer overflow in the label list
      line = "99999999999999999999 0:1.0";
      break;
    case 9:  // file-level: fewer data lines than the header declares
      lines.pop_back();
      file.corrupted_line = 0;
      break;
    default:
      ADD_FAILURE() << "unknown corruption kind " << kind;
  }
  const char* eol = rng.uniform(2) ? "\r\n" : "\n";
  for (const std::string& l : lines) file.text += l + eol;
  return file;
}

}  // namespace

TEST(XcReaderFuzz, SeededValidFilesAlwaysParse) {
  Rng rng(20260730);
  for (int round = 0; round < 60; ++round) {
    const Index feature_dim = 5 + rng.uniform(50);
    const Index label_dim = 2 + rng.uniform(20);
    const std::size_t samples = 1 + rng.uniform(6);
    std::string text = std::to_string(samples) + ' ' +
                       std::to_string(feature_dim) + ' ' +
                       std::to_string(label_dim) + '\n';
    for (std::size_t i = 0; i < samples; ++i)
      text += valid_data_line(rng, feature_dim, label_dim) + '\n';
    std::istringstream in(text);
    const Dataset d = read_xc(in, /*l2_normalize=*/false);
    EXPECT_EQ(d.size(), samples);
    for (std::size_t i = 0; i < d.size(); ++i) {
      for (Index l : d[i].labels) EXPECT_LT(l, label_dim);
      for (std::size_t k = 0; k < d[i].features.nnz(); ++k) {
        EXPECT_LT(d[i].features.indices()[k], feature_dim);
        EXPECT_TRUE(std::isfinite(d[i].features.values()[k]));
      }
    }
  }
}

TEST(XcReaderFuzz, CorruptionsAreRejectedWithLineNumbers) {
  Rng rng(42);
  for (int round = 0; round < 40; ++round) {
    for (int kind = 0; kind < 10; ++kind) {
      const XcFuzzFile file = make_corrupted(rng, kind);
      std::istringstream in(file.text);
      try {
        read_xc(in);
        ADD_FAILURE() << "corruption kind " << kind
                      << " was silently accepted:\n"
                      << file.text;
      } catch (const Error& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("line "), std::string::npos)
            << "kind " << kind << ": error lacks a line number: " << what;
        if (file.corrupted_line != 0) {
          const std::string tag =
              "line " + std::to_string(file.corrupted_line) + ":";
          EXPECT_NE(what.find(tag), std::string::npos)
              << "kind " << kind << ": expected \"" << tag
              << "\" in: " << what << "\nfile:\n"
              << file.text;
        }
      }
    }
  }
}

TEST(XcReaderFuzz, OverflowAndOutOfRangeFloatsAreRejected) {
  {
    std::istringstream in("1 4 3\n0 1:1e40\n");  // beyond float range
    EXPECT_THROW(read_xc(in), Error);
  }
  {
    // Overflowing feature index (fits in no uint32).
    std::istringstream in("1 4 3\n0 4294967296:1.0\n");
    EXPECT_THROW(read_xc(in), Error);
  }
  {
    // Unlabeled CRLF line with a tab separator still parses.
    std::istringstream in("1 4 3\r\n \t0:1.0\t2:0.5\r\n");
    const Dataset d = read_xc(in, false);
    EXPECT_TRUE(d[0].labels.empty());
    EXPECT_EQ(d[0].features.nnz(), 2u);
  }
}

TEST(XcReader, WriteReadRoundTrip) {
  Dataset d(8, 4);
  for (int i = 0; i < 5; ++i) {
    Sample s;
    s.features = SparseVector({static_cast<Index>(i), 7},
                              {0.25f * (i + 1), 1.0f});
    s.labels = {static_cast<Index>(i % 4)};
    d.add(s);
  }
  std::stringstream buffer;
  write_xc(buffer, d);
  const Dataset back = read_xc(buffer, false);
  ASSERT_EQ(back.size(), d.size());
  for (std::size_t i = 0; i < d.size(); ++i) {
    EXPECT_EQ(back[i].labels, d[i].labels);
    ASSERT_EQ(back[i].features.nnz(), d[i].features.nnz());
    for (std::size_t k = 0; k < d[i].features.nnz(); ++k) {
      EXPECT_EQ(back[i].features.indices()[k], d[i].features.indices()[k]);
      EXPECT_NEAR(back[i].features.values()[k], d[i].features.values()[k],
                  1e-5f);
    }
  }
}

// ---------------------------------------------------------------------------
// Synthetic generators
// ---------------------------------------------------------------------------

TEST(Synthetic, DeterministicInSeed) {
  SyntheticConfig cfg;
  cfg.feature_dim = 500;
  cfg.label_dim = 100;
  cfg.num_train = 50;
  cfg.num_test = 10;
  const auto a = make_synthetic_xc(cfg);
  const auto b = make_synthetic_xc(cfg);
  ASSERT_EQ(a.train.size(), b.train.size());
  for (std::size_t i = 0; i < a.train.size(); ++i) {
    EXPECT_EQ(a.train[i].labels, b.train[i].labels);
    EXPECT_EQ(a.train[i].features, b.train[i].features);
  }
}

TEST(Synthetic, RespectsDimensionsAndLabelBounds) {
  SyntheticConfig cfg;
  cfg.feature_dim = 300;
  cfg.label_dim = 40;
  cfg.num_train = 200;
  cfg.num_test = 50;
  const auto ds = make_synthetic_xc(cfg);
  EXPECT_EQ(ds.train.size(), 200u);
  EXPECT_EQ(ds.test.size(), 50u);
  for (const auto& s : ds.train.samples()) {
    ASSERT_FALSE(s.labels.empty());
    ASSERT_LE(s.labels.size(),
              static_cast<std::size_t>(cfg.max_labels_per_sample));
    for (Index l : s.labels) ASSERT_LT(l, cfg.label_dim);
    ASSERT_LE(s.features.min_dim(), cfg.feature_dim);
    ASSERT_NEAR(s.features.l2_norm(), 1.0f, 1e-4f);
  }
}

TEST(Synthetic, ZipfSkewsLabelFrequencies) {
  SyntheticConfig cfg;
  cfg.feature_dim = 500;
  cfg.label_dim = 200;
  cfg.num_train = 3000;
  cfg.num_test = 1;
  cfg.zipf_exponent = 1.1;
  const auto ds = make_synthetic_xc(cfg);
  std::vector<int> counts(cfg.label_dim, 0);
  for (const auto& s : ds.train.samples())
    for (Index l : s.labels) ++counts[l];
  // Head labels must be much more frequent than tail labels.
  int head = 0, tail = 0;
  for (int i = 0; i < 20; ++i) head += counts[static_cast<std::size_t>(i)];
  for (Index i = cfg.label_dim - 20; i < cfg.label_dim; ++i)
    tail += counts[i];
  EXPECT_GT(head, 5 * std::max(tail, 1));
}

TEST(Synthetic, SharedLabelMeansSharedFeatures) {
  // Two samples with the same (single) label should overlap in features far
  // more than two samples with different labels — that is the planted
  // structure a classifier can learn.
  SyntheticConfig cfg;
  cfg.feature_dim = 5'000;
  cfg.label_dim = 50;
  cfg.num_train = 400;
  cfg.num_test = 1;
  cfg.min_labels_per_sample = 1;
  cfg.max_labels_per_sample = 1;
  const auto ds = make_synthetic_xc(cfg);

  auto overlap = [](const SparseVector& a, const SparseVector& b) {
    std::set<Index> sa(a.indices().begin(), a.indices().end());
    int hits = 0;
    for (Index i : b.indices()) hits += sa.count(i) ? 1 : 0;
    return hits;
  };
  double same = 0, diff = 0;
  int same_n = 0, diff_n = 0;
  for (std::size_t i = 0; i < 100; ++i) {
    for (std::size_t j = i + 1; j < 100; ++j) {
      const int ov = overlap(ds.train[i].features, ds.train[j].features);
      if (ds.train[i].labels == ds.train[j].labels) {
        same += ov;
        ++same_n;
      } else {
        diff += ov;
        ++diff_n;
      }
    }
  }
  ASSERT_GT(same_n, 0);
  ASSERT_GT(diff_n, 0);
  EXPECT_GT(same / same_n, 3.0 * (diff / diff_n + 0.1));
}

TEST(Synthetic, PresetsMatchPaperScaleAtKPaper) {
  const auto d = delicious_like(Scale::kPaper);
  EXPECT_EQ(d.feature_dim, 782'585u);
  EXPECT_EQ(d.label_dim, 205'443u);
  EXPECT_EQ(d.num_train, 196'606u);
  const auto a = amazon_like(Scale::kPaper);
  EXPECT_EQ(a.feature_dim, 135'909u);
  EXPECT_EQ(a.label_dim, 670'091u);
}

TEST(Synthetic, ParseScale) {
  EXPECT_EQ(parse_scale("tiny"), Scale::kTiny);
  EXPECT_EQ(parse_scale("paper"), Scale::kPaper);
  EXPECT_THROW(parse_scale("huge"), Error);
}

TEST(Synthetic, InvalidConfigThrows) {
  SyntheticConfig cfg;
  cfg.active_per_label = cfg.features_per_label + 1;
  EXPECT_THROW(make_synthetic_xc(cfg), Error);
}

// ---------------------------------------------------------------------------
// Batching
// ---------------------------------------------------------------------------

Dataset tiny_dataset(std::size_t n) {
  Dataset d(4, 2);
  for (std::size_t i = 0; i < n; ++i) {
    Sample s;
    s.features = SparseVector({0}, {1.0f});
    s.labels = {static_cast<Index>(i % 2)};
    d.add(s);
  }
  return d;
}

TEST(Batcher, CoversEverySampleOncePerEpoch) {
  const Dataset d = tiny_dataset(10);
  Batcher b(d, 3, /*shuffle=*/true, 5);
  std::multiset<std::size_t> seen;
  std::size_t batches = 0;
  while (b.epoch() == 0) {
    for (std::size_t idx : b.next()) seen.insert(idx);
    ++batches;
    if (batches > 10) break;
  }
  // epoch() flips when next() rolls over, so the last inserted batch began
  // epoch 1 — drain carefully: instead verify counts for exactly one epoch.
  EXPECT_EQ(b.batches_per_epoch(), 4u);
}

TEST(Batcher, ExactCoverageOverOneEpoch) {
  const Dataset d = tiny_dataset(10);
  Batcher b(d, 4, true, 9);
  std::vector<int> count(10, 0);
  for (std::size_t i = 0; i < b.batches_per_epoch(); ++i) {
    for (std::size_t idx : b.next()) ++count[idx];
  }
  for (int c : count) EXPECT_EQ(c, 1);
}

TEST(Batcher, NoShuffleKeepsOrder) {
  const Dataset d = tiny_dataset(6);
  Batcher b(d, 2, false);
  auto batch = b.next();
  EXPECT_EQ(batch[0], 0u);
  EXPECT_EQ(batch[1], 1u);
  batch = b.next();
  EXPECT_EQ(batch[0], 2u);
}

TEST(Batcher, LastBatchMayBeShort) {
  const Dataset d = tiny_dataset(5);
  Batcher b(d, 3, false);
  EXPECT_EQ(b.next().size(), 3u);
  EXPECT_EQ(b.next().size(), 2u);
  EXPECT_EQ(b.next().size(), 3u);  // next epoch
  EXPECT_EQ(b.epoch(), 1u);
}

TEST(Batcher, RejectsInvalidArguments) {
  const Dataset d = tiny_dataset(5);
  EXPECT_THROW(Batcher(d, 0, true), Error);
  const Dataset empty(4, 2);
  EXPECT_THROW(Batcher(empty, 2, true), Error);
}

}  // namespace
}  // namespace slide
