// Baseline tests: the dense full-softmax network and the sampled-softmax
// configuration both learn planted data; their mechanics (full activation,
// static sampling) differ from SLIDE exactly as designed.
#include <gtest/gtest.h>

#include "baseline/dense_network.h"
#include "baseline/sampled_softmax.h"
#include "core/trainer.h"
#include "data/batching.h"
#include "data/synthetic.h"
#include "metrics/metrics.h"

namespace slide {
namespace {

SyntheticDataset tiny_data(std::uint64_t seed = 23) {
  SyntheticConfig cfg;
  cfg.feature_dim = 300;
  cfg.label_dim = 60;
  cfg.num_train = 500;
  cfg.num_test = 120;
  cfg.features_per_label = 10;
  cfg.active_per_label = 6;
  cfg.noise_features = 2;
  cfg.max_labels_per_sample = 2;
  cfg.seed = seed;
  return make_synthetic_xc(cfg);
}

TEST(DenseNetwork, LearnsPlantedStructure) {
  const auto data = tiny_data();
  DenseNetwork::Config cfg;
  cfg.input_dim = data.train.feature_dim();
  cfg.hidden_units = 16;
  cfg.output_units = data.train.label_dim();
  cfg.max_batch_size = 32;
  DenseNetwork net(cfg, 2);
  ThreadPool pool(2);

  const double before = evaluate_p_at_1(net, data.test, pool);
  Batcher batcher(data.train, 32, true, 1);
  float first = 0.0f, last = 0.0f;
  for (int i = 0; i < 100; ++i) {
    const float loss = net.step(data.train, batcher.next(), 5e-3f, pool);
    if (i == 0) first = loss;
    last = loss;
  }
  EXPECT_LT(last, first * 0.7f);
  const double after = evaluate_p_at_1(net, data.test, pool);
  EXPECT_GT(after, before + 0.2);
  EXPECT_GT(after, 0.3);
}

TEST(DenseNetwork, SingleVsMultiThreadSameLossShape) {
  // The dense step has no HOGWILD races by construction (unit-parallel
  // updates), so 1-thread and N-thread runs must match to float noise.
  const auto data = tiny_data(29);
  DenseNetwork::Config cfg;
  cfg.input_dim = data.train.feature_dim();
  cfg.hidden_units = 8;
  cfg.output_units = data.train.label_dim();
  cfg.max_batch_size = 16;

  auto run = [&](int threads) {
    DenseNetwork net(cfg, threads);
    ThreadPool pool(threads);
    Batcher batcher(data.train, 16, true, 2);
    std::vector<float> losses;
    for (int i = 0; i < 10; ++i)
      losses.push_back(net.step(data.train, batcher.next(), 1e-3f, pool));
    return losses;
  };
  const auto a = run(1);
  const auto b = run(3);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_NEAR(a[i], b[i], 2e-2f * (1.0f + a[i])) << i;
}

TEST(DenseNetwork, ParameterCountMatchesArchitecture) {
  DenseNetwork::Config cfg;
  cfg.input_dim = 10;
  cfg.hidden_units = 4;
  cfg.output_units = 7;
  cfg.max_batch_size = 2;
  DenseNetwork net(cfg, 1);
  EXPECT_EQ(net.num_parameters(), 10u * 4 + 4 + 7u * 4 + 7);
}

TEST(DenseNetwork, PredictReturnsValidLabel) {
  DenseNetwork::Config cfg;
  cfg.input_dim = 10;
  cfg.hidden_units = 4;
  cfg.output_units = 7;
  cfg.max_batch_size = 2;
  DenseNetwork net(cfg, 1);
  SparseVector x({1, 3}, {1.0f, 0.5f});
  std::vector<float> scratch;
  EXPECT_LT(net.predict_top1(x, scratch), 7u);
}

TEST(SampledSoftmax, ConfigBuildsRandomSampledOutput) {
  const NetworkConfig cfg = make_sampled_softmax_network(100, 50, 10, 8);
  ASSERT_EQ(cfg.layers.size(), 1u);
  EXPECT_FALSE(cfg.layers[0].hashed);
  EXPECT_TRUE(cfg.layers[0].random_sampled);
  EXPECT_EQ(cfg.layers[0].sampling.target, 10u);
  Network net(cfg, 2);
  EXPECT_EQ(net.output_dim(), 50u);
}

TEST(SampledSoftmax, LearnsWithGenerousSampleBudget) {
  const auto data = tiny_data(31);
  NetworkConfig cfg = make_sampled_softmax_network(
      data.train.feature_dim(), data.train.label_dim(),
      /*num_sampled=*/30, /*hidden=*/16);  // 50% of classes
  cfg.max_batch_size = 32;
  Network net(cfg, 2);
  TrainerConfig tc;
  tc.batch_size = 32;
  tc.num_threads = 2;
  tc.learning_rate = 5e-3f;
  Trainer trainer(net, tc);
  trainer.train(data.train, 120);
  const double acc =
      evaluate_p_at_1(net, data.test, trainer.pool(), {.exact = true});
  EXPECT_GT(acc, 0.25);
}

TEST(SampledSoftmax, TinySampleBudgetHurtsAccuracy) {
  // The paper's Figure 7 mechanism: static sampling with a small budget
  // converges to worse accuracy than adaptive sampling with the same
  // budget. Train SLIDE and SSM with the same tiny active-set size.
  const auto data = tiny_data(37);

  HashFamilyConfig family;
  family.kind = HashFamilyKind::kSimhash;
  family.k = 5;
  family.l = 16;
  NetworkConfig slide_cfg = make_paper_network(
      data.train.feature_dim(), data.train.label_dim(), family,
      /*target=*/8, /*hidden=*/16);
  slide_cfg.max_batch_size = 32;
  slide_cfg.layers[0].table.range_pow = 9;
  slide_cfg.layers[0].rebuild.initial_period = 20;

  NetworkConfig ssm_cfg = make_sampled_softmax_network(
      data.train.feature_dim(), data.train.label_dim(), /*num_sampled=*/8,
      /*hidden=*/16);
  ssm_cfg.max_batch_size = 32;

  auto train_and_eval = [&](NetworkConfig cfg) {
    Network net(cfg, 2);
    TrainerConfig tc;
    tc.batch_size = 32;
    tc.num_threads = 2;
    tc.learning_rate = 5e-3f;
    Trainer trainer(net, tc);
    trainer.train(data.train, 200);
    return evaluate_p_at_1(net, data.test, trainer.pool(), {.exact = true});
  };
  const double slide_acc = train_and_eval(slide_cfg);
  const double ssm_acc = train_and_eval(ssm_cfg);
  // SLIDE's adaptive sampling must beat static sampling at equal budget.
  EXPECT_GT(slide_acc, ssm_acc);
}

}  // namespace
}  // namespace slide
