// SIMD kernels vs the scalar reference oracle, across a sweep of sizes
// (including non-multiple-of-8 tails) and both dispatch modes.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "simd/kernels.h"
#include "sys/rng.h"

namespace slide {
namespace {

std::vector<float> random_vec(std::size_t n, Rng& rng, float scale = 1.0f) {
  std::vector<float> v(n);
  for (auto& x : v) x = scale * (rng.uniform_float() * 2.0f - 1.0f);
  return v;
}

class KernelSizes : public ::testing::TestWithParam<std::size_t> {
 protected:
  void SetUp() override { simd::set_simd_enabled(true); }
  void TearDown() override { simd::set_simd_enabled(true); }
};

TEST_P(KernelSizes, DotMatchesScalar) {
  Rng rng(GetParam() + 1);
  const auto a = random_vec(GetParam(), rng);
  const auto b = random_vec(GetParam(), rng);
  const float ref = simd::scalar::dot(a.data(), b.data(), a.size());
  const float got = simd::dot(a.data(), b.data(), a.size());
  EXPECT_NEAR(got, ref, 1e-4f * (1.0f + std::fabs(ref)));
}

TEST_P(KernelSizes, AxpyMatchesScalar) {
  Rng rng(GetParam() + 2);
  const auto x = random_vec(GetParam(), rng);
  auto y1 = random_vec(GetParam(), rng);
  auto y2 = y1;
  simd::scalar::axpy(0.37f, x.data(), y1.data(), x.size());
  simd::axpy(0.37f, x.data(), y2.data(), x.size());
  for (std::size_t i = 0; i < x.size(); ++i)
    ASSERT_NEAR(y1[i], y2[i], 1e-5f) << i;
}

TEST_P(KernelSizes, ScaleMatchesScalar) {
  Rng rng(GetParam() + 3);
  auto x1 = random_vec(GetParam(), rng);
  auto x2 = x1;
  simd::scalar::scale(x1.data(), -1.83f, x1.size());
  simd::scale(x2.data(), -1.83f, x2.size());
  for (std::size_t i = 0; i < x1.size(); ++i) ASSERT_EQ(x1[i], x2[i]);
}

TEST_P(KernelSizes, SumMatchesScalar) {
  Rng rng(GetParam() + 4);
  const auto x = random_vec(GetParam(), rng);
  EXPECT_NEAR(simd::sum(x.data(), x.size()),
              simd::scalar::sum(x.data(), x.size()),
              1e-4f * (1.0f + x.size() * 0.01f));
}

TEST_P(KernelSizes, MaxMatchesScalar) {
  Rng rng(GetParam() + 5);
  const auto x = random_vec(GetParam(), rng);
  if (x.empty()) return;
  EXPECT_EQ(simd::max(x.data(), x.size()),
            simd::scalar::max(x.data(), x.size()));
}

TEST_P(KernelSizes, ReluClampsNegatives) {
  Rng rng(GetParam() + 6);
  auto x1 = random_vec(GetParam(), rng);
  auto x2 = x1;
  simd::scalar::relu(x1.data(), x1.size());
  simd::relu(x2.data(), x2.size());
  for (std::size_t i = 0; i < x1.size(); ++i) {
    ASSERT_EQ(x1[i], x2[i]);
    ASSERT_GE(x2[i], 0.0f);
  }
}

TEST_P(KernelSizes, SoftmaxSumsToOneAndMatchesScalar) {
  if (GetParam() == 0) return;
  Rng rng(GetParam() + 7);
  auto x1 = random_vec(GetParam(), rng, 5.0f);
  auto x2 = x1;
  simd::scalar::softmax_inplace(x1.data(), x1.size());
  simd::softmax_inplace(x2.data(), x2.size());
  float total = 0.0f;
  for (std::size_t i = 0; i < x1.size(); ++i) {
    ASSERT_NEAR(x1[i], x2[i], 1e-5f);
    total += x2[i];
  }
  EXPECT_NEAR(total, 1.0f, 1e-4f);
}

TEST_P(KernelSizes, AdamStepMatchesScalar) {
  Rng rng(GetParam() + 8);
  const std::size_t n = GetParam();
  auto w1 = random_vec(n, rng);
  auto w2 = w1;
  auto m1 = random_vec(n, rng, 0.1f);
  auto m2 = m1;
  std::vector<float> v1(n), v2(n);
  for (auto& v : v1) v = rng.uniform_float() * 0.01f;
  v2 = v1;
  const auto g = random_vec(n, rng);
  simd::scalar::adam_step(w1.data(), m1.data(), v1.data(), g.data(), n,
                          1e-3f, 0.9f, 0.999f, 1e-8f, 0.1f, 0.001f);
  simd::adam_step(w2.data(), m2.data(), v2.data(), g.data(), n, 1e-3f, 0.9f,
                  0.999f, 1e-8f, 0.1f, 0.001f);
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_NEAR(w1[i], w2[i], 2e-5f) << i;
    ASSERT_NEAR(m1[i], m2[i], 1e-6f) << i;
    ASSERT_NEAR(v1[i], v2[i], 1e-6f) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, KernelSizes,
                         ::testing::Values(0, 1, 3, 7, 8, 9, 15, 16, 17, 31,
                                           64, 100, 128, 1000));

TEST(SparseKernels, SparseDotMatchesDenseExpansion) {
  Rng rng(77);
  const std::size_t dim = 500;
  const auto dense = random_vec(dim, rng);
  std::vector<Index> idx = {3, 17, 42, 99, 100, 101, 250, 331, 400, 499};
  std::vector<float> val(idx.size());
  for (auto& v : val) v = rng.uniform_float();
  float ref = 0.0f;
  for (std::size_t i = 0; i < idx.size(); ++i) ref += val[i] * dense[idx[i]];
  EXPECT_NEAR(simd::sparse_dot(idx.data(), val.data(), idx.size(),
                               dense.data()),
              ref, 1e-5f);
  EXPECT_NEAR(simd::scalar::sparse_dot(idx.data(), val.data(), idx.size(),
                                       dense.data()),
              ref, 1e-5f);
}

TEST(SparseKernels, SparseAxpyScattersCorrectly) {
  Rng rng(78);
  std::vector<float> dense(100, 1.0f);
  std::vector<Index> idx = {0, 5, 99};
  std::vector<float> val = {1.0f, 2.0f, 3.0f};
  simd::sparse_axpy(2.0f, idx.data(), val.data(), idx.size(), dense.data());
  EXPECT_FLOAT_EQ(dense[0], 3.0f);
  EXPECT_FLOAT_EQ(dense[5], 5.0f);
  EXPECT_FLOAT_EQ(dense[99], 7.0f);
  EXPECT_FLOAT_EQ(dense[1], 1.0f);
}

TEST(SparseKernels, LargeSparseDotUsesGatherPath) {
  Rng rng(79);
  const std::size_t dim = 10'000;
  const auto dense = random_vec(dim, rng);
  std::vector<Index> idx;
  std::vector<float> val;
  for (int i = 0; i < 531; ++i) {  // > 8 so the AVX2 gather loop runs
    idx.push_back(rng.uniform(static_cast<std::uint32_t>(dim)));
    val.push_back(rng.uniform_float());
  }
  const float ref = simd::scalar::sparse_dot(idx.data(), val.data(),
                                             idx.size(), dense.data());
  const float got =
      simd::sparse_dot(idx.data(), val.data(), idx.size(), dense.data());
  EXPECT_NEAR(got, ref, 1e-3f * (1.0f + std::fabs(ref)));
}

TEST(Dispatch, ToggleSwitchesPath) {
  EXPECT_TRUE(simd::simd_enabled() == simd::compiled_with_avx2());
  simd::set_simd_enabled(false);
  EXPECT_FALSE(simd::simd_enabled());
  // Kernels still work in scalar mode.
  std::vector<float> a = {1, 2, 3}, b = {4, 5, 6};
  EXPECT_FLOAT_EQ(simd::dot(a.data(), b.data(), 3), 32.0f);
  simd::set_simd_enabled(true);
}

TEST(Softmax, StableUnderLargeLogits) {
  std::vector<float> x = {1000.0f, 1000.0f, 999.0f};
  simd::softmax_inplace(x.data(), x.size());
  EXPECT_NEAR(x[0], x[1], 1e-6f);
  EXPECT_GT(x[0], x[2]);
  EXPECT_NEAR(x[0] + x[1] + x[2], 1.0f, 1e-5f);
}

}  // namespace
}  // namespace slide
