// Kernel dispatch + parity suite.
//
// Every vector kernel is checked against the scalar reference oracle at
// EVERY dispatch level this host supports (scalar / AVX2 / AVX-512),
// exhaustively across lengths 0..64 — covering every tail/mask shape of
// the 8- and 16-lane loops — plus larger sizes and unaligned base
// pointers. The bf16 kernels get the same treatment plus round-trip
// error-bound and rounding-semantics tests. Dispatch-level selection, the
// deprecated set_simd_enabled shim, and env parsing are covered at the
// end.
//
// The suite restores the entry dispatch level after every test, so it
// composes with the CI matrix that runs it under SLIDE_SIMD_LEVEL=scalar
// and =avx2.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "simd/backend.h"
#include "simd/bf16.h"
#include "simd/kernels.h"
#include "sys/rng.h"

namespace slide {
namespace {

using simd::Bf16;
using simd::SimdLevel;

std::vector<SimdLevel> supported_levels() {
  std::vector<SimdLevel> levels;
  for (SimdLevel level :
       {SimdLevel::kScalar, SimdLevel::kAVX2, SimdLevel::kAVX512}) {
    if (simd::level_supported(level)) levels.push_back(level);
  }
  return levels;
}

std::vector<float> random_vec(std::size_t n, Rng& rng, float scale = 1.0f) {
  std::vector<float> v(n);
  for (auto& x : v) x = scale * (rng.uniform_float() * 2.0f - 1.0f);
  return v;
}

std::vector<Bf16> random_bf16(std::size_t n, Rng& rng, float scale = 1.0f) {
  std::vector<Bf16> v(n);
  for (auto& x : v)
    x = simd::float_to_bf16(scale * (rng.uniform_float() * 2.0f - 1.0f));
  return v;
}

/// The tail/mask shapes under test: every length 0..64 (every remainder of
/// the 8- and 16-lane loops, including multiple full iterations), plus a
/// few larger sizes for the unrolled main loops.
std::vector<std::size_t> parity_sizes() {
  std::vector<std::size_t> sizes;
  for (std::size_t n = 0; n <= 64; ++n) sizes.push_back(n);
  for (std::size_t n : {65, 100, 127, 128, 129, 1000}) sizes.push_back(n);
  return sizes;
}

/// Base-pointer misalignments (in floats) exercised on every size. 0 is
/// the aligned case; the others guarantee the kernels never assume 32/64-
/// byte alignment.
constexpr std::size_t kOffsets[] = {0, 1, 3};
constexpr std::size_t kMaxOffset = 3;

class KernelParity : public ::testing::TestWithParam<SimdLevel> {
 protected:
  void SetUp() override {
    entry_level_ = simd::active_level();
    simd::set_simd_level(GetParam());
  }
  void TearDown() override { simd::set_simd_level(entry_level_); }

 private:
  SimdLevel entry_level_;
};

TEST_P(KernelParity, Dot) {
  Rng rng(11);
  for (std::size_t n : parity_sizes()) {
    const auto a = random_vec(n + kMaxOffset, rng);
    const auto b = random_vec(n + kMaxOffset, rng);
    for (std::size_t off : kOffsets) {
      const float ref = simd::scalar::dot(a.data() + off, b.data() + off, n);
      const float got = simd::dot(a.data() + off, b.data() + off, n);
      ASSERT_NEAR(got, ref, 1e-4f * (1.0f + std::fabs(ref)))
          << "n=" << n << " off=" << off;
    }
  }
}

TEST_P(KernelParity, Axpy) {
  Rng rng(12);
  for (std::size_t n : parity_sizes()) {
    const auto x = random_vec(n + kMaxOffset, rng);
    for (std::size_t off : kOffsets) {
      auto y1 = random_vec(n + kMaxOffset, rng);
      auto y2 = y1;
      simd::scalar::axpy(0.37f, x.data() + off, y1.data() + off, n);
      simd::axpy(0.37f, x.data() + off, y2.data() + off, n);
      for (std::size_t i = 0; i < y1.size(); ++i)
        ASSERT_NEAR(y1[i], y2[i], 1e-5f) << "n=" << n << " off=" << off;
    }
  }
}

TEST_P(KernelParity, Scale) {
  Rng rng(13);
  for (std::size_t n : parity_sizes()) {
    for (std::size_t off : kOffsets) {
      auto x1 = random_vec(n + kMaxOffset, rng);
      auto x2 = x1;
      simd::scalar::scale(x1.data() + off, -1.83f, n);
      simd::scale(x2.data() + off, -1.83f, n);
      for (std::size_t i = 0; i < x1.size(); ++i)
        ASSERT_EQ(x1[i], x2[i]) << "n=" << n << " off=" << off;
    }
  }
}

TEST_P(KernelParity, Sum) {
  Rng rng(14);
  for (std::size_t n : parity_sizes()) {
    const auto x = random_vec(n + kMaxOffset, rng);
    for (std::size_t off : kOffsets) {
      ASSERT_NEAR(simd::sum(x.data() + off, n),
                  simd::scalar::sum(x.data() + off, n),
                  1e-4f * (1.0f + static_cast<float>(n) * 0.01f))
          << "n=" << n << " off=" << off;
    }
  }
}

TEST_P(KernelParity, Max) {
  Rng rng(15);
  for (std::size_t n : parity_sizes()) {
    const auto x = random_vec(n + kMaxOffset, rng);
    for (std::size_t off : kOffsets) {
      // Exact: max never rounds. n == 0 must yield -inf on every level.
      ASSERT_EQ(simd::max(x.data() + off, n),
                simd::scalar::max(x.data() + off, n))
          << "n=" << n << " off=" << off;
    }
  }
}

TEST_P(KernelParity, Relu) {
  Rng rng(16);
  for (std::size_t n : parity_sizes()) {
    for (std::size_t off : kOffsets) {
      auto x1 = random_vec(n + kMaxOffset, rng);
      auto x2 = x1;
      simd::scalar::relu(x1.data() + off, n);
      simd::relu(x2.data() + off, n);
      for (std::size_t i = 0; i < x1.size(); ++i) {
        ASSERT_EQ(x1[i], x2[i]) << "n=" << n << " off=" << off;
      }
    }
  }
}

TEST_P(KernelParity, SparseDot) {
  Rng rng(17);
  const std::size_t dim = 5000;
  const auto dense = random_vec(dim + kMaxOffset, rng);
  for (std::size_t nnz : parity_sizes()) {
    std::vector<Index> idx(nnz + kMaxOffset);
    std::vector<float> val(nnz + kMaxOffset);
    for (std::size_t i = 0; i < idx.size(); ++i) {
      // Duplicates allowed by the kernel contract; keep some on purpose.
      idx[i] = rng.uniform(static_cast<std::uint32_t>(dim));
      val[i] = rng.uniform_float() * 2.0f - 1.0f;
    }
    for (std::size_t off : kOffsets) {
      const float ref = simd::scalar::sparse_dot(idx.data() + off,
                                                 val.data() + off, nnz,
                                                 dense.data());
      const float got = simd::sparse_dot(idx.data() + off, val.data() + off,
                                         nnz, dense.data());
      ASSERT_NEAR(got, ref, 1e-4f * (1.0f + std::fabs(ref)))
          << "nnz=" << nnz << " off=" << off;
    }
  }
}

TEST_P(KernelParity, SparseAxpy) {
  Rng rng(18);
  const std::size_t dim = 500;
  for (std::size_t nnz : parity_sizes()) {
    std::vector<Index> idx(nnz);
    std::vector<float> val(nnz);
    for (std::size_t i = 0; i < nnz; ++i) {
      idx[i] = rng.uniform(static_cast<std::uint32_t>(dim));
      val[i] = rng.uniform_float();
    }
    auto d1 = random_vec(dim, rng);
    auto d2 = d1;
    simd::scalar::sparse_axpy(0.7f, idx.data(), val.data(), nnz, d1.data());
    simd::sparse_axpy(0.7f, idx.data(), val.data(), nnz, d2.data());
    for (std::size_t i = 0; i < dim; ++i)
      ASSERT_NEAR(d1[i], d2[i], 1e-5f) << "nnz=" << nnz;
  }
}

TEST_P(KernelParity, Softmax) {
  Rng rng(19);
  for (std::size_t n : parity_sizes()) {
    if (n == 0) continue;
    for (std::size_t off : kOffsets) {
      auto x1 = random_vec(n + kMaxOffset, rng, 5.0f);
      auto x2 = x1;
      simd::scalar::softmax_inplace(x1.data() + off, n);
      simd::softmax_inplace(x2.data() + off, n);
      float total = 0.0f;
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_NEAR(x1[off + i], x2[off + i], 1e-5f)
            << "n=" << n << " off=" << off;
        total += x2[off + i];
      }
      ASSERT_NEAR(total, 1.0f, 1e-4f);
    }
  }
}

TEST_P(KernelParity, AdamStep) {
  Rng rng(20);
  for (std::size_t n : parity_sizes()) {
    for (std::size_t off : kOffsets) {
      const std::size_t len = n + kMaxOffset;
      auto w1 = random_vec(len, rng);
      auto w2 = w1;
      auto m1 = random_vec(len, rng, 0.1f);
      auto m2 = m1;
      std::vector<float> v1(len), v2(len);
      for (auto& v : v1) v = rng.uniform_float() * 0.01f;
      v2 = v1;
      const auto g = random_vec(len, rng);
      simd::scalar::adam_step(w1.data() + off, m1.data() + off,
                              v1.data() + off, g.data() + off, n, 1e-3f,
                              0.9f, 0.999f, 1e-8f, 0.1f, 0.001f);
      simd::adam_step(w2.data() + off, m2.data() + off, v2.data() + off,
                      g.data() + off, n, 1e-3f, 0.9f, 0.999f, 1e-8f, 0.1f,
                      0.001f);
      for (std::size_t i = 0; i < len; ++i) {
        ASSERT_NEAR(w1[i], w2[i], 2e-5f) << "n=" << n << " off=" << off;
        ASSERT_NEAR(m1[i], m2[i], 1e-6f) << "n=" << n << " off=" << off;
        ASSERT_NEAR(v1[i], v2[i], 1e-6f) << "n=" << n << " off=" << off;
      }
    }
  }
}

TEST_P(KernelParity, DotBf16) {
  Rng rng(21);
  for (std::size_t n : parity_sizes()) {
    const auto w = random_bf16(n + kMaxOffset, rng);
    const auto x = random_vec(n + kMaxOffset, rng);
    for (std::size_t off : kOffsets) {
      const float ref =
          simd::scalar::dot_bf16(w.data() + off, x.data() + off, n);
      const float got = simd::dot_bf16(w.data() + off, x.data() + off, n);
      ASSERT_NEAR(got, ref, 1e-4f * (1.0f + std::fabs(ref)))
          << "n=" << n << " off=" << off;
    }
  }
}

TEST_P(KernelParity, AxpyBf16) {
  Rng rng(22);
  for (std::size_t n : parity_sizes()) {
    const auto x = random_bf16(n + kMaxOffset, rng);
    for (std::size_t off : kOffsets) {
      auto y1 = random_vec(n + kMaxOffset, rng);
      auto y2 = y1;
      simd::scalar::axpy_bf16(0.41f, x.data() + off, y1.data() + off, n);
      simd::axpy_bf16(0.41f, x.data() + off, y2.data() + off, n);
      for (std::size_t i = 0; i < y1.size(); ++i)
        ASSERT_NEAR(y1[i], y2[i], 1e-5f) << "n=" << n << " off=" << off;
    }
  }
}

TEST_P(KernelParity, SparseDotBf16) {
  Rng rng(23);
  const std::size_t dim = 3000;
  const auto dense = random_bf16(dim, rng);
  for (std::size_t nnz : parity_sizes()) {
    std::vector<Index> idx(nnz);
    std::vector<float> val(nnz);
    for (std::size_t i = 0; i < nnz; ++i) {
      idx[i] = rng.uniform(static_cast<std::uint32_t>(dim));
      val[i] = rng.uniform_float();
    }
    const float ref = simd::scalar::sparse_dot_bf16(idx.data(), val.data(),
                                                    nnz, dense.data());
    const float got =
        simd::sparse_dot_bf16(idx.data(), val.data(), nnz, dense.data());
    ASSERT_NEAR(got, ref, 1e-4f * (1.0f + std::fabs(ref))) << "nnz=" << nnz;
  }
}

TEST_P(KernelParity, QuantizeDequantizeRoundTrip) {
  Rng rng(24);
  for (std::size_t n : parity_sizes()) {
    const auto src = random_vec(n, rng, 10.0f);
    std::vector<Bf16> q(n), q_ref(n);
    simd::quantize_bf16(src.data(), q.data(), n);
    simd::scalar::quantize_bf16(src.data(), q_ref.data(), n);
    ASSERT_EQ(q, q_ref) << "n=" << n;  // quantization is exact per element
    std::vector<float> back(n);
    simd::dequantize_bf16(q.data(), back.data(), n);
    for (std::size_t i = 0; i < n; ++i) {
      // 8-bit significand, round-to-nearest: relative error <= 2^-9 for
      // normal values; 1/256 gives headroom for the denormal edge.
      ASSERT_NEAR(back[i], src[i], std::fabs(src[i]) / 256.0f + 1e-30f);
    }
  }
}

// ---- int8 tier kernels ----------------------------------------------------

std::vector<simd::I8> random_i8(std::size_t n, Rng& rng) {
  std::vector<simd::I8> v(n);
  // Full signed range including the +/-127 saturation edges.
  for (auto& x : v)
    x = static_cast<simd::I8>(static_cast<int>(rng.uniform(255)) - 127);
  return v;
}

std::vector<simd::U8> random_u8(std::size_t n, Rng& rng) {
  std::vector<simd::U8> v(n);
  for (auto& x : v) x = static_cast<simd::U8>(rng.uniform(128));
  return v;
}

TEST_P(KernelParity, DotI8) {
  Rng rng(31);
  for (std::size_t n : parity_sizes()) {
    auto w = random_i8(n + kMaxOffset, rng);
    auto x = random_u8(n + kMaxOffset, rng);
    if (n >= 2) {
      // Pin the extreme product 127*127 into the accumulation: proves the
      // vpmaddubsw pair sum (2 * 127 * 127 < INT16_MAX) never saturates.
      w[kMaxOffset] = 127;
      x[kMaxOffset] = 127;
      w[kMaxOffset + 1] = -127;
      x[kMaxOffset + 1] = 127;
    }
    for (std::size_t off : kOffsets) {
      const std::int32_t ref =
          simd::scalar::dot_i8(w.data() + off, x.data() + off, n);
      const std::int32_t got = simd::dot_i8(w.data() + off, x.data() + off, n);
      // Integer math is exact at every level — bitwise equality, not NEAR.
      ASSERT_EQ(got, ref) << "n=" << n << " off=" << off;
    }
  }
}

TEST_P(KernelParity, SparseDotI8) {
  Rng rng(32);
  const std::size_t dim = 3000;
  const auto dense = random_i8(dim, rng);
  for (std::size_t nnz : parity_sizes()) {
    std::vector<Index> idx(nnz);
    std::vector<float> val(nnz);
    for (std::size_t i = 0; i < nnz; ++i) {
      idx[i] = rng.uniform(static_cast<std::uint32_t>(dim));
      val[i] = rng.uniform_float();
    }
    const float ref = simd::scalar::sparse_dot_i8(idx.data(), val.data(), nnz,
                                                  dense.data());
    const float got =
        simd::sparse_dot_i8(idx.data(), val.data(), nnz, dense.data());
    ASSERT_NEAR(got, ref, 1e-2f * (1.0f + std::fabs(ref))) << "nnz=" << nnz;
  }
}

TEST_P(KernelParity, AxpyI8) {
  Rng rng(33);
  for (std::size_t n : parity_sizes()) {
    const auto x = random_i8(n + kMaxOffset, rng);
    for (std::size_t off : kOffsets) {
      auto y1 = random_vec(n + kMaxOffset, rng);
      auto y2 = y1;
      simd::scalar::axpy_i8(0.013f, x.data() + off, y1.data() + off, n);
      simd::axpy_i8(0.013f, x.data() + off, y2.data() + off, n);
      for (std::size_t i = 0; i < y1.size(); ++i)
        ASSERT_NEAR(y1[i], y2[i], 1e-4f) << "n=" << n << " off=" << off;
    }
  }
}

TEST_P(KernelParity, QuantizeI8MatchesScalar) {
  Rng rng(34);
  for (std::size_t n : parity_sizes()) {
    const auto src = random_vec(n, rng, 5.0f);
    std::vector<simd::I8> q(n, 99), q_ref(n, 99);
    const float s = simd::quantize_i8(src.data(), q.data(), n);
    const float s_ref = simd::scalar::quantize_i8(src.data(), q_ref.data(), n);
    ASSERT_EQ(s, s_ref) << "n=" << n;
    ASSERT_EQ(q, q_ref) << "n=" << n;

    std::vector<simd::U8> u(n, 99), u_ref(n, 99);
    const float a = simd::quantize_act_u8(src.data(), u.data(), n);
    const float a_ref =
        simd::scalar::quantize_act_u8(src.data(), u_ref.data(), n);
    ASSERT_EQ(a, a_ref) << "n=" << n;
    ASSERT_EQ(u, u_ref) << "n=" << n;
  }
}

// ---- fp16 tier kernels ----------------------------------------------------

std::vector<simd::Fp16> random_f16(std::size_t n, Rng& rng,
                                   float scale = 1.0f) {
  std::vector<simd::Fp16> v(n);
  for (auto& x : v)
    x = simd::float_to_fp16(scale * (rng.uniform_float() * 2.0f - 1.0f));
  return v;
}

TEST_P(KernelParity, DotF16) {
  Rng rng(41);
  for (std::size_t n : parity_sizes()) {
    const auto w = random_f16(n + kMaxOffset, rng);
    const auto x = random_vec(n + kMaxOffset, rng);
    for (std::size_t off : kOffsets) {
      const float ref =
          simd::scalar::dot_f16(w.data() + off, x.data() + off, n);
      const float got = simd::dot_f16(w.data() + off, x.data() + off, n);
      ASSERT_NEAR(got, ref, 1e-4f * (1.0f + std::fabs(ref)))
          << "n=" << n << " off=" << off;
    }
  }
}

TEST_P(KernelParity, AxpyF16) {
  Rng rng(42);
  for (std::size_t n : parity_sizes()) {
    const auto x = random_f16(n + kMaxOffset, rng);
    for (std::size_t off : kOffsets) {
      auto y1 = random_vec(n + kMaxOffset, rng);
      auto y2 = y1;
      simd::scalar::axpy_f16(0.29f, x.data() + off, y1.data() + off, n);
      simd::axpy_f16(0.29f, x.data() + off, y2.data() + off, n);
      for (std::size_t i = 0; i < y1.size(); ++i)
        ASSERT_NEAR(y1[i], y2[i], 1e-5f) << "n=" << n << " off=" << off;
    }
  }
}

TEST_P(KernelParity, SparseDotF16) {
  Rng rng(43);
  const std::size_t dim = 3000;
  const auto dense = random_f16(dim, rng);
  for (std::size_t nnz : parity_sizes()) {
    std::vector<Index> idx(nnz);
    std::vector<float> val(nnz);
    for (std::size_t i = 0; i < nnz; ++i) {
      idx[i] = rng.uniform(static_cast<std::uint32_t>(dim));
      val[i] = rng.uniform_float();
    }
    const float ref = simd::scalar::sparse_dot_f16(idx.data(), val.data(), nnz,
                                                   dense.data());
    const float got =
        simd::sparse_dot_f16(idx.data(), val.data(), nnz, dense.data());
    ASSERT_NEAR(got, ref, 1e-4f * (1.0f + std::fabs(ref))) << "nnz=" << nnz;
  }
}

TEST_P(KernelParity, QuantizeDequantizeF16RoundTrip) {
  Rng rng(44);
  for (std::size_t n : parity_sizes()) {
    const auto src = random_vec(n, rng, 10.0f);
    std::vector<simd::Fp16> q(n), q_ref(n);
    simd::quantize_f16(src.data(), q.data(), n);
    simd::scalar::quantize_f16(src.data(), q_ref.data(), n);
    ASSERT_EQ(q, q_ref) << "n=" << n;
    std::vector<float> back(n);
    simd::dequantize_f16(q.data(), back.data(), n);
    for (std::size_t i = 0; i < n; ++i) {
      // 11-bit significand, round-to-nearest: relative error <= 2^-12.
      ASSERT_NEAR(back[i], src[i], std::fabs(src[i]) / 2048.0f + 1e-30f);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Levels, KernelParity,
                         ::testing::ValuesIn(supported_levels()),
                         [](const auto& info) {
                           return std::string(simd::to_string(info.param));
                         });

// ---- bf16 scalar semantics -------------------------------------------------

TEST(Bf16, ExactValuesRoundTrip) {
  for (float f : {0.0f, -0.0f, 1.0f, -1.0f, 0.5f, 2.0f, 128.0f, -0.375f}) {
    EXPECT_EQ(simd::bf16_to_float(simd::float_to_bf16(f)), f) << f;
  }
}

TEST(Bf16, RoundsToNearestEven) {
  // 1 + 2^-8 sits exactly between bf16(1.0) = 0x3F80 and 0x3F81: the tie
  // goes to the even mantissa (0x3F80).
  const float tie_low = std::bit_cast<float>(0x3F808000u);
  EXPECT_EQ(simd::float_to_bf16(tie_low), 0x3F80u);
  // 1 + 2^-7 + 2^-8 is the tie between 0x3F81 and 0x3F82 -> even (0x3F82).
  const float tie_high = std::bit_cast<float>(0x3F818000u);
  EXPECT_EQ(simd::float_to_bf16(tie_high), 0x3F82u);
  // Just above a tie rounds up.
  const float above = std::bit_cast<float>(0x3F808001u);
  EXPECT_EQ(simd::float_to_bf16(above), 0x3F81u);
}

TEST(Bf16, SpecialValues) {
  const float inf = std::numeric_limits<float>::infinity();
  EXPECT_EQ(simd::bf16_to_float(simd::float_to_bf16(inf)), inf);
  EXPECT_EQ(simd::bf16_to_float(simd::float_to_bf16(-inf)), -inf);
  const float nan = std::numeric_limits<float>::quiet_NaN();
  EXPECT_TRUE(std::isnan(simd::bf16_to_float(simd::float_to_bf16(nan))));
  // Rounding must not overflow the largest finite bf16 into infinity for
  // values that are finite in bf16 range.
  const float big = 3.3e38f;
  EXPECT_TRUE(std::isinf(simd::bf16_to_float(simd::float_to_bf16(big))) ||
              simd::bf16_to_float(simd::float_to_bf16(big)) > 3e38f);
}

TEST(Bf16, MixedDotTracksFp32WithinQuantizationError) {
  Rng rng(25);
  const std::size_t n = 512;
  const auto w = random_vec(n, rng);
  const auto x = random_vec(n, rng);
  std::vector<Bf16> q(n);
  simd::quantize_bf16(w.data(), q.data(), n);
  const float fp32 = simd::scalar::dot(w.data(), x.data(), n);
  const float bf16 = simd::scalar::dot_bf16(q.data(), x.data(), n);
  // Each term errs by <= |w_i x_i| / 512; the sum of magnitudes bounds it.
  float magnitude = 0.0f;
  for (std::size_t i = 0; i < n; ++i)
    magnitude += std::fabs(w[i]) * std::fabs(x[i]);
  EXPECT_NEAR(bf16, fp32, magnitude / 256.0f + 1e-5f);
}

// ---- fp16 scalar semantics -------------------------------------------------

TEST(Fp16, ExactValuesRoundTrip) {
  for (float f : {0.0f, -0.0f, 1.0f, -1.0f, 0.5f, 2.0f, 128.0f, -0.375f,
                  65504.0f,     // largest finite fp16
                  6.103515625e-5f,  // smallest normal (2^-14)
                  5.9604644775390625e-8f}) {  // smallest subnormal (2^-24)
    EXPECT_EQ(simd::fp16_to_float(simd::float_to_fp16(f)), f) << f;
  }
  // Signed zero is preserved.
  EXPECT_TRUE(std::signbit(simd::fp16_to_float(simd::float_to_fp16(-0.0f))));
}

TEST(Fp16, RoundsToNearestEven) {
  // 1 + 2^-11 sits exactly between fp16(1.0) = 0x3C00 and 0x3C01: the tie
  // goes to the even mantissa (0x3C00).
  const float tie_low = std::bit_cast<float>(0x3F801000u);
  EXPECT_EQ(simd::float_to_fp16(tie_low), 0x3C00u);
  // 1 + 2^-10 + 2^-11 is the tie between 0x3C01 and 0x3C02 -> even.
  const float tie_high = std::bit_cast<float>(0x3F803000u);
  EXPECT_EQ(simd::float_to_fp16(tie_high), 0x3C02u);
  // Just above a tie rounds up.
  const float above = std::bit_cast<float>(0x3F801001u);
  EXPECT_EQ(simd::float_to_fp16(above), 0x3C01u);
}

TEST(Fp16, SubnormalRounding) {
  // 2^-25 is the exact tie between 0 and the smallest subnormal 2^-24:
  // round-to-even picks 0.
  EXPECT_EQ(simd::float_to_fp16(std::ldexp(1.0f, -25)), 0x0000u);
  // 1.5 * 2^-24 is the tie between 0x0001 and 0x0002 -> even (0x0002).
  EXPECT_EQ(simd::float_to_fp16(1.5f * std::ldexp(1.0f, -24)), 0x0002u);
  // Anything above the tie rounds to the smallest subnormal.
  EXPECT_EQ(simd::float_to_fp16(0.6f * std::ldexp(1.0f, -24)), 0x0001u);
}

TEST(Fp16, SpecialValuesAndOverflow) {
  const float inf = std::numeric_limits<float>::infinity();
  EXPECT_EQ(simd::fp16_to_float(simd::float_to_fp16(inf)), inf);
  EXPECT_EQ(simd::fp16_to_float(simd::float_to_fp16(-inf)), -inf);
  const float nan = std::numeric_limits<float>::quiet_NaN();
  EXPECT_TRUE(std::isnan(simd::fp16_to_float(simd::float_to_fp16(nan))));
  // 65520 is the exact midpoint between 65504 (max finite) and 2^16: the
  // vcvtps2ph convention rounds it up, overflowing to +inf.
  EXPECT_EQ(simd::float_to_fp16(65520.0f), 0x7C00u);
  EXPECT_EQ(simd::float_to_fp16(-65520.0f), 0xFC00u);
  // Just below the midpoint stays the largest finite value.
  EXPECT_EQ(simd::float_to_fp16(65519.0f), 0x7BFFu);
  // Any fp32 far beyond fp16 range saturates to inf, not garbage.
  EXPECT_EQ(simd::float_to_fp16(3.4e38f), 0x7C00u);
}

// ---- int8 quantizer semantics ----------------------------------------------

TEST(Int8, QuantizeSaturatesAtPlusMinus127) {
  const float src[] = {2.0f, -2.0f, 1.0f, -1.0f, 0.0f};
  simd::I8 q[5];
  const float scale = simd::scalar::quantize_i8(src, q, 5);
  EXPECT_FLOAT_EQ(scale, 2.0f / 127.0f);
  EXPECT_EQ(q[0], 127);   // |amax| row entries land exactly on the edge
  EXPECT_EQ(q[1], -127);
  EXPECT_EQ(q[2], 64);    // 63.5 ties to even -> 64
  EXPECT_EQ(q[3], -64);
  EXPECT_EQ(q[4], 0);
}

TEST(Int8, QuantizeZeroRowYieldsScaleZero) {
  const float src[] = {0.0f, -0.0f, 0.0f};
  simd::I8 q[] = {5, 5, 5};
  EXPECT_EQ(simd::scalar::quantize_i8(src, q, 3), 0.0f);
  EXPECT_EQ(q[0], 0);
  EXPECT_EQ(q[1], 0);
  EXPECT_EQ(q[2], 0);
}

TEST(Int8, QuantizeTiesRoundToEven) {
  // amax = 127 makes inv = 1, so the sources are quantized verbatim:
  // x.5 ties must go to the even neighbor (nearbyint under the default
  // rounding mode), matching what a future vcvtps2dq vector path does.
  const float src[] = {127.0f, 0.5f, 1.5f, 2.5f, -0.5f, -1.5f};
  simd::I8 q[6];
  (void)simd::scalar::quantize_i8(src, q, 6);
  EXPECT_EQ(q[1], 0);
  EXPECT_EQ(q[2], 2);
  EXPECT_EQ(q[3], 2);
  EXPECT_EQ(q[4], 0);
  EXPECT_EQ(q[5], -2);
}

TEST(Int8, QuantizeRoundTripWithinHalfStep) {
  Rng rng(51);
  const std::size_t n = 512;
  const auto src = random_vec(n, rng, 3.0f);
  std::vector<simd::I8> q(n);
  const float scale = simd::scalar::quantize_i8(src.data(), q.data(), n);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(scale * static_cast<float>(q[i]), src[i], scale * 0.5f + 1e-7f)
        << i;
  }
}

TEST(Int8, ActivationQuantizeClampsNegativesToZero) {
  const float src[] = {-3.0f, 0.0f, 1.0f, 2.0f, -0.5f};
  simd::U8 q[5];
  const float scale = simd::scalar::quantize_act_u8(src, q, 5);
  EXPECT_FLOAT_EQ(scale, 2.0f / 127.0f);
  EXPECT_EQ(q[0], 0u);  // negative inputs clamp (post-ReLU contract)
  EXPECT_EQ(q[1], 0u);
  EXPECT_EQ(q[2], 64u);  // 63.5 -> even
  EXPECT_EQ(q[3], 127u);
  EXPECT_EQ(q[4], 0u);

  // All-nonpositive input: scale 0, everything zero.
  const float neg[] = {-1.0f, -2.0f};
  simd::U8 qn[] = {9, 9};
  EXPECT_EQ(simd::scalar::quantize_act_u8(neg, qn, 2), 0.0f);
  EXPECT_EQ(qn[0], 0u);
  EXPECT_EQ(qn[1], 0u);
}

TEST(Int8, MixedDotRecoversFp32Score) {
  // End-to-end score recovery: bias + sw * sx * dot_i8 must track the fp32
  // dot within the combined quantization error bound.
  Rng rng(52);
  const std::size_t n = 256;
  const auto w = random_vec(n, rng);
  auto x = random_vec(n, rng);
  for (auto& v : x) v = std::max(v, 0.0f);  // post-ReLU activations
  std::vector<simd::I8> qw(n);
  std::vector<simd::U8> qx(n);
  const float sw = simd::scalar::quantize_i8(w.data(), qw.data(), n);
  const float sx = simd::scalar::quantize_act_u8(x.data(), qx.data(), n);
  const float fp32 = simd::scalar::dot(w.data(), x.data(), n);
  const float i8 = sw * sx *
                   static_cast<float>(simd::scalar::dot_i8(
                       qw.data(), qx.data(), n));
  // Each term errs by <= (sw/2)|x_i| + (sx/2)|w_i| + sw*sx/4.
  float bound = 0.0f;
  for (std::size_t i = 0; i < n; ++i)
    bound += 0.5f * sw * std::fabs(x[i]) + 0.5f * sx * std::fabs(w[i]) +
             0.25f * sw * sx;
  EXPECT_NEAR(i8, fp32, bound + 1e-5f);
}

// ---- dispatch machinery ----------------------------------------------------

class DispatchLevels : public ::testing::Test {
 protected:
  void SetUp() override { entry_level_ = simd::active_level(); }
  void TearDown() override { simd::set_simd_level(entry_level_); }
  simd::SimdLevel entry_level_;
};

TEST_F(DispatchLevels, ScalarIsAlwaysSupported) {
  EXPECT_TRUE(simd::level_compiled(SimdLevel::kScalar));
  EXPECT_TRUE(simd::level_supported(SimdLevel::kScalar));
  EXPECT_TRUE(simd::level_supported(simd::detected_level()));
}

TEST_F(DispatchLevels, SetLevelRebindsTheTable) {
  for (SimdLevel level : supported_levels()) {
    simd::set_simd_level(level);
    EXPECT_EQ(simd::active_level(), level);
    EXPECT_EQ(simd::backend().level, level);
    EXPECT_STREQ(simd::backend().name, simd::to_string(level));
    // Kernels keep working at every binding.
    std::vector<float> a = {1, 2, 3}, b = {4, 5, 6};
    EXPECT_FLOAT_EQ(simd::dot(a.data(), b.data(), 3), 32.0f);
  }
}

TEST_F(DispatchLevels, BackendForReturnsFixedTables) {
  for (SimdLevel level : supported_levels()) {
    const simd::Backend* table = simd::backend_for(level);
    ASSERT_NE(table, nullptr);
    EXPECT_EQ(table->level, level);
  }
}

TEST_F(DispatchLevels, KernelPathNamesAreRecorded) {
  // Every binding names the int8/fp16 paths it scores through (these land
  // in BENCH_backend.json rows and the serve_cli banner). Scalar is always
  // "scalar"; vector levels report whichever instruction path cpuid
  // selected at bind time — the graceful-downgrade contract is that the
  // slot is always callable, never that a specific ISA was picked.
  for (SimdLevel level : supported_levels()) {
    simd::set_simd_level(level);
    const simd::Backend& b = simd::backend();
    ASSERT_NE(b.i8_path, nullptr);
    ASSERT_NE(b.f16_path, nullptr);
    if (level == SimdLevel::kScalar) {
      EXPECT_STREQ(b.i8_path, "scalar");
      EXPECT_STREQ(b.f16_path, "scalar");
    }
    // All ten tier slots must be bound at every level.
    EXPECT_NE(b.dot_i8, nullptr);
    EXPECT_NE(b.sparse_dot_i8, nullptr);
    EXPECT_NE(b.axpy_i8, nullptr);
    EXPECT_NE(b.quantize_i8, nullptr);
    EXPECT_NE(b.quantize_act_u8, nullptr);
    EXPECT_NE(b.dot_f16, nullptr);
    EXPECT_NE(b.sparse_dot_f16, nullptr);
    EXPECT_NE(b.axpy_f16, nullptr);
    EXPECT_NE(b.quantize_f16, nullptr);
    EXPECT_NE(b.dequantize_f16, nullptr);
  }
}

TEST_F(DispatchLevels, UnsupportedLevelThrows) {
  for (SimdLevel level :
       {SimdLevel::kScalar, SimdLevel::kAVX2, SimdLevel::kAVX512}) {
    if (simd::level_supported(level)) continue;
    EXPECT_THROW(simd::set_simd_level(level), Error);
    EXPECT_EQ(simd::backend_for(level), nullptr);
  }
}

TEST_F(DispatchLevels, ParseRoundTripsAndRejectsGarbage) {
  for (SimdLevel level :
       {SimdLevel::kScalar, SimdLevel::kAVX2, SimdLevel::kAVX512}) {
    EXPECT_EQ(simd::parse_simd_level(simd::to_string(level)), level);
  }
  EXPECT_THROW(simd::parse_simd_level("avx1024"), Error);
  EXPECT_THROW(simd::parse_simd_level(nullptr), Error);
}

// The shims are [[deprecated]] but must keep working until removed —
// this is intentional coverage of the deprecated surface.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
TEST_F(DispatchLevels, DeprecatedShimMapsOntoDispatch) {
  EXPECT_EQ(simd::compiled_with_avx2(),
            simd::level_compiled(SimdLevel::kAVX2));
  simd::set_simd_enabled(false);
  EXPECT_EQ(simd::active_level(), SimdLevel::kScalar);
  EXPECT_FALSE(simd::simd_enabled());
  simd::set_simd_enabled(true);
  EXPECT_EQ(simd::active_level(), simd::detected_level());
  EXPECT_EQ(simd::simd_enabled(),
            simd::detected_level() != SimdLevel::kScalar);
  // Scalar mode still computes correctly.
  simd::set_simd_enabled(false);
  std::vector<float> a = {1, 2, 3}, b = {4, 5, 6};
  EXPECT_FLOAT_EQ(simd::dot(a.data(), b.data(), 3), 32.0f);
}
#pragma GCC diagnostic pop

TEST(Softmax, StableUnderLargeLogits) {
  std::vector<float> x = {1000.0f, 1000.0f, 999.0f};
  simd::softmax_inplace(x.data(), x.size());
  EXPECT_NEAR(x[0], x[1], 1e-6f);
  EXPECT_GT(x[0], x[2]);
  EXPECT_NEAR(x[0] + x[1] + x[2], 1.0f, 1e-5f);
}

}  // namespace
}  // namespace slide
