// Kernel dispatch + parity suite.
//
// Every vector kernel is checked against the scalar reference oracle at
// EVERY dispatch level this host supports (scalar / AVX2 / AVX-512),
// exhaustively across lengths 0..64 — covering every tail/mask shape of
// the 8- and 16-lane loops — plus larger sizes and unaligned base
// pointers. The bf16 kernels get the same treatment plus round-trip
// error-bound and rounding-semantics tests. Dispatch-level selection, the
// deprecated set_simd_enabled shim, and env parsing are covered at the
// end.
//
// The suite restores the entry dispatch level after every test, so it
// composes with the CI matrix that runs it under SLIDE_SIMD_LEVEL=scalar
// and =avx2.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "simd/backend.h"
#include "simd/bf16.h"
#include "simd/kernels.h"
#include "sys/rng.h"

namespace slide {
namespace {

using simd::Bf16;
using simd::SimdLevel;

std::vector<SimdLevel> supported_levels() {
  std::vector<SimdLevel> levels;
  for (SimdLevel level :
       {SimdLevel::kScalar, SimdLevel::kAVX2, SimdLevel::kAVX512}) {
    if (simd::level_supported(level)) levels.push_back(level);
  }
  return levels;
}

std::vector<float> random_vec(std::size_t n, Rng& rng, float scale = 1.0f) {
  std::vector<float> v(n);
  for (auto& x : v) x = scale * (rng.uniform_float() * 2.0f - 1.0f);
  return v;
}

std::vector<Bf16> random_bf16(std::size_t n, Rng& rng, float scale = 1.0f) {
  std::vector<Bf16> v(n);
  for (auto& x : v)
    x = simd::float_to_bf16(scale * (rng.uniform_float() * 2.0f - 1.0f));
  return v;
}

/// The tail/mask shapes under test: every length 0..64 (every remainder of
/// the 8- and 16-lane loops, including multiple full iterations), plus a
/// few larger sizes for the unrolled main loops.
std::vector<std::size_t> parity_sizes() {
  std::vector<std::size_t> sizes;
  for (std::size_t n = 0; n <= 64; ++n) sizes.push_back(n);
  for (std::size_t n : {65, 100, 127, 128, 129, 1000}) sizes.push_back(n);
  return sizes;
}

/// Base-pointer misalignments (in floats) exercised on every size. 0 is
/// the aligned case; the others guarantee the kernels never assume 32/64-
/// byte alignment.
constexpr std::size_t kOffsets[] = {0, 1, 3};
constexpr std::size_t kMaxOffset = 3;

class KernelParity : public ::testing::TestWithParam<SimdLevel> {
 protected:
  void SetUp() override {
    entry_level_ = simd::active_level();
    simd::set_simd_level(GetParam());
  }
  void TearDown() override { simd::set_simd_level(entry_level_); }

 private:
  SimdLevel entry_level_;
};

TEST_P(KernelParity, Dot) {
  Rng rng(11);
  for (std::size_t n : parity_sizes()) {
    const auto a = random_vec(n + kMaxOffset, rng);
    const auto b = random_vec(n + kMaxOffset, rng);
    for (std::size_t off : kOffsets) {
      const float ref = simd::scalar::dot(a.data() + off, b.data() + off, n);
      const float got = simd::dot(a.data() + off, b.data() + off, n);
      ASSERT_NEAR(got, ref, 1e-4f * (1.0f + std::fabs(ref)))
          << "n=" << n << " off=" << off;
    }
  }
}

TEST_P(KernelParity, Axpy) {
  Rng rng(12);
  for (std::size_t n : parity_sizes()) {
    const auto x = random_vec(n + kMaxOffset, rng);
    for (std::size_t off : kOffsets) {
      auto y1 = random_vec(n + kMaxOffset, rng);
      auto y2 = y1;
      simd::scalar::axpy(0.37f, x.data() + off, y1.data() + off, n);
      simd::axpy(0.37f, x.data() + off, y2.data() + off, n);
      for (std::size_t i = 0; i < y1.size(); ++i)
        ASSERT_NEAR(y1[i], y2[i], 1e-5f) << "n=" << n << " off=" << off;
    }
  }
}

TEST_P(KernelParity, Scale) {
  Rng rng(13);
  for (std::size_t n : parity_sizes()) {
    for (std::size_t off : kOffsets) {
      auto x1 = random_vec(n + kMaxOffset, rng);
      auto x2 = x1;
      simd::scalar::scale(x1.data() + off, -1.83f, n);
      simd::scale(x2.data() + off, -1.83f, n);
      for (std::size_t i = 0; i < x1.size(); ++i)
        ASSERT_EQ(x1[i], x2[i]) << "n=" << n << " off=" << off;
    }
  }
}

TEST_P(KernelParity, Sum) {
  Rng rng(14);
  for (std::size_t n : parity_sizes()) {
    const auto x = random_vec(n + kMaxOffset, rng);
    for (std::size_t off : kOffsets) {
      ASSERT_NEAR(simd::sum(x.data() + off, n),
                  simd::scalar::sum(x.data() + off, n),
                  1e-4f * (1.0f + static_cast<float>(n) * 0.01f))
          << "n=" << n << " off=" << off;
    }
  }
}

TEST_P(KernelParity, Max) {
  Rng rng(15);
  for (std::size_t n : parity_sizes()) {
    const auto x = random_vec(n + kMaxOffset, rng);
    for (std::size_t off : kOffsets) {
      // Exact: max never rounds. n == 0 must yield -inf on every level.
      ASSERT_EQ(simd::max(x.data() + off, n),
                simd::scalar::max(x.data() + off, n))
          << "n=" << n << " off=" << off;
    }
  }
}

TEST_P(KernelParity, Relu) {
  Rng rng(16);
  for (std::size_t n : parity_sizes()) {
    for (std::size_t off : kOffsets) {
      auto x1 = random_vec(n + kMaxOffset, rng);
      auto x2 = x1;
      simd::scalar::relu(x1.data() + off, n);
      simd::relu(x2.data() + off, n);
      for (std::size_t i = 0; i < x1.size(); ++i) {
        ASSERT_EQ(x1[i], x2[i]) << "n=" << n << " off=" << off;
      }
    }
  }
}

TEST_P(KernelParity, SparseDot) {
  Rng rng(17);
  const std::size_t dim = 5000;
  const auto dense = random_vec(dim + kMaxOffset, rng);
  for (std::size_t nnz : parity_sizes()) {
    std::vector<Index> idx(nnz + kMaxOffset);
    std::vector<float> val(nnz + kMaxOffset);
    for (std::size_t i = 0; i < idx.size(); ++i) {
      // Duplicates allowed by the kernel contract; keep some on purpose.
      idx[i] = rng.uniform(static_cast<std::uint32_t>(dim));
      val[i] = rng.uniform_float() * 2.0f - 1.0f;
    }
    for (std::size_t off : kOffsets) {
      const float ref = simd::scalar::sparse_dot(idx.data() + off,
                                                 val.data() + off, nnz,
                                                 dense.data());
      const float got = simd::sparse_dot(idx.data() + off, val.data() + off,
                                         nnz, dense.data());
      ASSERT_NEAR(got, ref, 1e-4f * (1.0f + std::fabs(ref)))
          << "nnz=" << nnz << " off=" << off;
    }
  }
}

TEST_P(KernelParity, SparseAxpy) {
  Rng rng(18);
  const std::size_t dim = 500;
  for (std::size_t nnz : parity_sizes()) {
    std::vector<Index> idx(nnz);
    std::vector<float> val(nnz);
    for (std::size_t i = 0; i < nnz; ++i) {
      idx[i] = rng.uniform(static_cast<std::uint32_t>(dim));
      val[i] = rng.uniform_float();
    }
    auto d1 = random_vec(dim, rng);
    auto d2 = d1;
    simd::scalar::sparse_axpy(0.7f, idx.data(), val.data(), nnz, d1.data());
    simd::sparse_axpy(0.7f, idx.data(), val.data(), nnz, d2.data());
    for (std::size_t i = 0; i < dim; ++i)
      ASSERT_NEAR(d1[i], d2[i], 1e-5f) << "nnz=" << nnz;
  }
}

TEST_P(KernelParity, Softmax) {
  Rng rng(19);
  for (std::size_t n : parity_sizes()) {
    if (n == 0) continue;
    for (std::size_t off : kOffsets) {
      auto x1 = random_vec(n + kMaxOffset, rng, 5.0f);
      auto x2 = x1;
      simd::scalar::softmax_inplace(x1.data() + off, n);
      simd::softmax_inplace(x2.data() + off, n);
      float total = 0.0f;
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_NEAR(x1[off + i], x2[off + i], 1e-5f)
            << "n=" << n << " off=" << off;
        total += x2[off + i];
      }
      ASSERT_NEAR(total, 1.0f, 1e-4f);
    }
  }
}

TEST_P(KernelParity, AdamStep) {
  Rng rng(20);
  for (std::size_t n : parity_sizes()) {
    for (std::size_t off : kOffsets) {
      const std::size_t len = n + kMaxOffset;
      auto w1 = random_vec(len, rng);
      auto w2 = w1;
      auto m1 = random_vec(len, rng, 0.1f);
      auto m2 = m1;
      std::vector<float> v1(len), v2(len);
      for (auto& v : v1) v = rng.uniform_float() * 0.01f;
      v2 = v1;
      const auto g = random_vec(len, rng);
      simd::scalar::adam_step(w1.data() + off, m1.data() + off,
                              v1.data() + off, g.data() + off, n, 1e-3f,
                              0.9f, 0.999f, 1e-8f, 0.1f, 0.001f);
      simd::adam_step(w2.data() + off, m2.data() + off, v2.data() + off,
                      g.data() + off, n, 1e-3f, 0.9f, 0.999f, 1e-8f, 0.1f,
                      0.001f);
      for (std::size_t i = 0; i < len; ++i) {
        ASSERT_NEAR(w1[i], w2[i], 2e-5f) << "n=" << n << " off=" << off;
        ASSERT_NEAR(m1[i], m2[i], 1e-6f) << "n=" << n << " off=" << off;
        ASSERT_NEAR(v1[i], v2[i], 1e-6f) << "n=" << n << " off=" << off;
      }
    }
  }
}

TEST_P(KernelParity, DotBf16) {
  Rng rng(21);
  for (std::size_t n : parity_sizes()) {
    const auto w = random_bf16(n + kMaxOffset, rng);
    const auto x = random_vec(n + kMaxOffset, rng);
    for (std::size_t off : kOffsets) {
      const float ref =
          simd::scalar::dot_bf16(w.data() + off, x.data() + off, n);
      const float got = simd::dot_bf16(w.data() + off, x.data() + off, n);
      ASSERT_NEAR(got, ref, 1e-4f * (1.0f + std::fabs(ref)))
          << "n=" << n << " off=" << off;
    }
  }
}

TEST_P(KernelParity, AxpyBf16) {
  Rng rng(22);
  for (std::size_t n : parity_sizes()) {
    const auto x = random_bf16(n + kMaxOffset, rng);
    for (std::size_t off : kOffsets) {
      auto y1 = random_vec(n + kMaxOffset, rng);
      auto y2 = y1;
      simd::scalar::axpy_bf16(0.41f, x.data() + off, y1.data() + off, n);
      simd::axpy_bf16(0.41f, x.data() + off, y2.data() + off, n);
      for (std::size_t i = 0; i < y1.size(); ++i)
        ASSERT_NEAR(y1[i], y2[i], 1e-5f) << "n=" << n << " off=" << off;
    }
  }
}

TEST_P(KernelParity, SparseDotBf16) {
  Rng rng(23);
  const std::size_t dim = 3000;
  const auto dense = random_bf16(dim, rng);
  for (std::size_t nnz : parity_sizes()) {
    std::vector<Index> idx(nnz);
    std::vector<float> val(nnz);
    for (std::size_t i = 0; i < nnz; ++i) {
      idx[i] = rng.uniform(static_cast<std::uint32_t>(dim));
      val[i] = rng.uniform_float();
    }
    const float ref = simd::scalar::sparse_dot_bf16(idx.data(), val.data(),
                                                    nnz, dense.data());
    const float got =
        simd::sparse_dot_bf16(idx.data(), val.data(), nnz, dense.data());
    ASSERT_NEAR(got, ref, 1e-4f * (1.0f + std::fabs(ref))) << "nnz=" << nnz;
  }
}

TEST_P(KernelParity, QuantizeDequantizeRoundTrip) {
  Rng rng(24);
  for (std::size_t n : parity_sizes()) {
    const auto src = random_vec(n, rng, 10.0f);
    std::vector<Bf16> q(n), q_ref(n);
    simd::quantize_bf16(src.data(), q.data(), n);
    simd::scalar::quantize_bf16(src.data(), q_ref.data(), n);
    ASSERT_EQ(q, q_ref) << "n=" << n;  // quantization is exact per element
    std::vector<float> back(n);
    simd::dequantize_bf16(q.data(), back.data(), n);
    for (std::size_t i = 0; i < n; ++i) {
      // 8-bit significand, round-to-nearest: relative error <= 2^-9 for
      // normal values; 1/256 gives headroom for the denormal edge.
      ASSERT_NEAR(back[i], src[i], std::fabs(src[i]) / 256.0f + 1e-30f);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Levels, KernelParity,
                         ::testing::ValuesIn(supported_levels()),
                         [](const auto& info) {
                           return std::string(simd::to_string(info.param));
                         });

// ---- bf16 scalar semantics -------------------------------------------------

TEST(Bf16, ExactValuesRoundTrip) {
  for (float f : {0.0f, -0.0f, 1.0f, -1.0f, 0.5f, 2.0f, 128.0f, -0.375f}) {
    EXPECT_EQ(simd::bf16_to_float(simd::float_to_bf16(f)), f) << f;
  }
}

TEST(Bf16, RoundsToNearestEven) {
  // 1 + 2^-8 sits exactly between bf16(1.0) = 0x3F80 and 0x3F81: the tie
  // goes to the even mantissa (0x3F80).
  const float tie_low = std::bit_cast<float>(0x3F808000u);
  EXPECT_EQ(simd::float_to_bf16(tie_low), 0x3F80u);
  // 1 + 2^-7 + 2^-8 is the tie between 0x3F81 and 0x3F82 -> even (0x3F82).
  const float tie_high = std::bit_cast<float>(0x3F818000u);
  EXPECT_EQ(simd::float_to_bf16(tie_high), 0x3F82u);
  // Just above a tie rounds up.
  const float above = std::bit_cast<float>(0x3F808001u);
  EXPECT_EQ(simd::float_to_bf16(above), 0x3F81u);
}

TEST(Bf16, SpecialValues) {
  const float inf = std::numeric_limits<float>::infinity();
  EXPECT_EQ(simd::bf16_to_float(simd::float_to_bf16(inf)), inf);
  EXPECT_EQ(simd::bf16_to_float(simd::float_to_bf16(-inf)), -inf);
  const float nan = std::numeric_limits<float>::quiet_NaN();
  EXPECT_TRUE(std::isnan(simd::bf16_to_float(simd::float_to_bf16(nan))));
  // Rounding must not overflow the largest finite bf16 into infinity for
  // values that are finite in bf16 range.
  const float big = 3.3e38f;
  EXPECT_TRUE(std::isinf(simd::bf16_to_float(simd::float_to_bf16(big))) ||
              simd::bf16_to_float(simd::float_to_bf16(big)) > 3e38f);
}

TEST(Bf16, MixedDotTracksFp32WithinQuantizationError) {
  Rng rng(25);
  const std::size_t n = 512;
  const auto w = random_vec(n, rng);
  const auto x = random_vec(n, rng);
  std::vector<Bf16> q(n);
  simd::quantize_bf16(w.data(), q.data(), n);
  const float fp32 = simd::scalar::dot(w.data(), x.data(), n);
  const float bf16 = simd::scalar::dot_bf16(q.data(), x.data(), n);
  // Each term errs by <= |w_i x_i| / 512; the sum of magnitudes bounds it.
  float magnitude = 0.0f;
  for (std::size_t i = 0; i < n; ++i)
    magnitude += std::fabs(w[i]) * std::fabs(x[i]);
  EXPECT_NEAR(bf16, fp32, magnitude / 256.0f + 1e-5f);
}

// ---- dispatch machinery ----------------------------------------------------

class DispatchLevels : public ::testing::Test {
 protected:
  void SetUp() override { entry_level_ = simd::active_level(); }
  void TearDown() override { simd::set_simd_level(entry_level_); }
  simd::SimdLevel entry_level_;
};

TEST_F(DispatchLevels, ScalarIsAlwaysSupported) {
  EXPECT_TRUE(simd::level_compiled(SimdLevel::kScalar));
  EXPECT_TRUE(simd::level_supported(SimdLevel::kScalar));
  EXPECT_TRUE(simd::level_supported(simd::detected_level()));
}

TEST_F(DispatchLevels, SetLevelRebindsTheTable) {
  for (SimdLevel level : supported_levels()) {
    simd::set_simd_level(level);
    EXPECT_EQ(simd::active_level(), level);
    EXPECT_EQ(simd::backend().level, level);
    EXPECT_STREQ(simd::backend().name, simd::to_string(level));
    // Kernels keep working at every binding.
    std::vector<float> a = {1, 2, 3}, b = {4, 5, 6};
    EXPECT_FLOAT_EQ(simd::dot(a.data(), b.data(), 3), 32.0f);
  }
}

TEST_F(DispatchLevels, BackendForReturnsFixedTables) {
  for (SimdLevel level : supported_levels()) {
    const simd::Backend* table = simd::backend_for(level);
    ASSERT_NE(table, nullptr);
    EXPECT_EQ(table->level, level);
  }
}

TEST_F(DispatchLevels, UnsupportedLevelThrows) {
  for (SimdLevel level :
       {SimdLevel::kScalar, SimdLevel::kAVX2, SimdLevel::kAVX512}) {
    if (simd::level_supported(level)) continue;
    EXPECT_THROW(simd::set_simd_level(level), Error);
    EXPECT_EQ(simd::backend_for(level), nullptr);
  }
}

TEST_F(DispatchLevels, ParseRoundTripsAndRejectsGarbage) {
  for (SimdLevel level :
       {SimdLevel::kScalar, SimdLevel::kAVX2, SimdLevel::kAVX512}) {
    EXPECT_EQ(simd::parse_simd_level(simd::to_string(level)), level);
  }
  EXPECT_THROW(simd::parse_simd_level("avx1024"), Error);
  EXPECT_THROW(simd::parse_simd_level(nullptr), Error);
}

// The shims are [[deprecated]] but must keep working until removed —
// this is intentional coverage of the deprecated surface.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
TEST_F(DispatchLevels, DeprecatedShimMapsOntoDispatch) {
  EXPECT_EQ(simd::compiled_with_avx2(),
            simd::level_compiled(SimdLevel::kAVX2));
  simd::set_simd_enabled(false);
  EXPECT_EQ(simd::active_level(), SimdLevel::kScalar);
  EXPECT_FALSE(simd::simd_enabled());
  simd::set_simd_enabled(true);
  EXPECT_EQ(simd::active_level(), simd::detected_level());
  EXPECT_EQ(simd::simd_enabled(),
            simd::detected_level() != SimdLevel::kScalar);
  // Scalar mode still computes correctly.
  simd::set_simd_enabled(false);
  std::vector<float> a = {1, 2, 3}, b = {4, 5, 6};
  EXPECT_FLOAT_EQ(simd::dot(a.data(), b.data(), 3), 32.0f);
}
#pragma GCC diagnostic pop

TEST(Softmax, StableUnderLargeLogits) {
  std::vector<float> x = {1000.0f, 1000.0f, 999.0f};
  simd::softmax_inplace(x.data(), x.size());
  EXPECT_NEAR(x[0], x[1], 1e-6f);
  EXPECT_GT(x[0], x[2]);
  EXPECT_NEAR(x[0] + x[1] + x[2], 1.0f, 1e-5f);
}

}  // namespace
}  // namespace slide
