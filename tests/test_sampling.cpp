// Sampling-strategy tests: vanilla target adherence, TopK frequency
// ordering, hard-threshold filtering, and the property tests tying the
// empirical selection rates to the closed-form probabilities of paper
// eqs. 2-3 (lsh/collision.h).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "lsh/collision.h"
#include "lsh/sampling.h"

namespace slide {
namespace {

using Buckets = std::vector<std::vector<Index>>;

std::vector<std::span<const Index>> views(const Buckets& buckets) {
  std::vector<std::span<const Index>> v;
  v.reserve(buckets.size());
  for (const auto& b : buckets) v.emplace_back(b);
  return v;
}

TEST(VisitedSet, InsertAndEpochSemantics) {
  VisitedSet v(10);
  v.begin_epoch();
  EXPECT_TRUE(v.insert(3));
  EXPECT_FALSE(v.insert(3));
  EXPECT_TRUE(v.contains(3));
  EXPECT_FALSE(v.contains(4));
  v.begin_epoch();
  EXPECT_FALSE(v.contains(3));
  EXPECT_TRUE(v.insert(3));
}

TEST(VisitedSet, FrequencyCounting) {
  VisitedSet v(10);
  v.begin_epoch();
  v.insert(5);
  EXPECT_EQ(v.bump(5), 1);
  EXPECT_EQ(v.bump(5), 2);
  EXPECT_EQ(v.count(5), 2);
  EXPECT_EQ(v.count(6), 0);
}

TEST(Vanilla, StopsAtTargetAndDeduplicates) {
  const Buckets buckets = {{1, 2, 3}, {3, 4, 5}, {5, 6, 7}, {7, 8, 9}};
  VisitedSet visited(16);
  Rng rng(1);
  std::vector<Index> out;
  SamplingConfig cfg{SamplingStrategy::kVanilla, /*target=*/4, 2};
  sample_neurons(cfg, views(buckets), visited, rng, out);
  EXPECT_EQ(out.size(), 4u);
  std::set<Index> unique(out.begin(), out.end());
  EXPECT_EQ(unique.size(), 4u);
}

TEST(Vanilla, ReturnsEverythingWhenTargetExceedsUnion) {
  const Buckets buckets = {{1, 2}, {2, 3}};
  VisitedSet visited(8);
  Rng rng(2);
  std::vector<Index> out;
  SamplingConfig cfg{SamplingStrategy::kVanilla, 100, 2};
  sample_neurons(cfg, views(buckets), visited, rng, out);
  std::set<Index> unique(out.begin(), out.end());
  EXPECT_EQ(unique, (std::set<Index>{1, 2, 3}));
}

TEST(Vanilla, RandomTableOrderVariesWithRng) {
  const Buckets buckets = {{1}, {2}, {3}, {4}, {5}, {6}, {7}, {8}};
  VisitedSet visited(16);
  std::set<Index> firsts;
  for (std::uint64_t seed = 0; seed < 32; ++seed) {
    Rng rng(seed);
    std::vector<Index> out;
    SamplingConfig cfg{SamplingStrategy::kVanilla, 1, 2};
    sample_neurons(cfg, views(buckets), visited, rng, out);
    ASSERT_EQ(out.size(), 1u);
    firsts.insert(out[0]);
  }
  EXPECT_GT(firsts.size(), 3u);  // many distinct tables chosen first
}

TEST(Vanilla, PreStampedIdsAreExcluded) {
  const Buckets buckets = {{1, 2, 3, 4}};
  VisitedSet visited(8);
  visited.begin_epoch();
  visited.insert(2);
  visited.insert(3);
  Rng rng(3);
  std::vector<Index> out;
  SamplingConfig cfg{SamplingStrategy::kVanilla, 10, 2};
  sample_neurons(cfg, views(buckets), visited, rng, out,
                 /*fresh_epoch=*/false);
  EXPECT_EQ(std::set<Index>(out.begin(), out.end()),
            (std::set<Index>{1, 4}));
}

TEST(TopK, SelectsMostFrequentAcrossTables) {
  // id 9 appears in 4 buckets, id 5 in 3, id 1 in 2, the rest once.
  const Buckets buckets = {{9, 5, 1, 0}, {9, 5, 1, 2}, {9, 5, 3}, {9, 4}};
  VisitedSet visited(16);
  Rng rng(4);
  std::vector<Index> out;
  SamplingConfig cfg{SamplingStrategy::kTopK, 3, 2};
  sample_neurons(cfg, views(buckets), visited, rng, out);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0], 9u);  // sorted by descending frequency
  EXPECT_EQ(out[1], 5u);
  EXPECT_EQ(out[2], 1u);
}

TEST(TopK, ReturnsAllWhenFewerThanTarget) {
  const Buckets buckets = {{1, 2}, {2}};
  VisitedSet visited(8);
  Rng rng(5);
  std::vector<Index> out;
  SamplingConfig cfg{SamplingStrategy::kTopK, 10, 2};
  sample_neurons(cfg, views(buckets), visited, rng, out);
  EXPECT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], 2u);  // frequency 2 first
}

TEST(HardThreshold, KeepsOnlyIdsAtOrAboveM) {
  const Buckets buckets = {{1, 2, 3}, {2, 3}, {3}};
  VisitedSet visited(8);
  Rng rng(6);
  std::vector<Index> out;
  for (int m = 1; m <= 3; ++m) {
    SamplingConfig cfg{SamplingStrategy::kHardThreshold, 100, m};
    sample_neurons(cfg, views(buckets), visited, rng, out);
    std::set<Index> got(out.begin(), out.end());
    if (m == 1) {
      EXPECT_EQ(got, (std::set<Index>{1, 2, 3}));
    }
    if (m == 2) {
      EXPECT_EQ(got, (std::set<Index>{2, 3}));
    }
    if (m == 3) {
      EXPECT_EQ(got, (std::set<Index>{3}));
    }
  }
}

TEST(Strategies, EmptyBucketsYieldEmptyResult) {
  const Buckets buckets = {{}, {}, {}};
  VisitedSet visited(8);
  Rng rng(7);
  std::vector<Index> out = {99};
  for (auto strategy :
       {SamplingStrategy::kVanilla, SamplingStrategy::kTopK,
        SamplingStrategy::kHardThreshold}) {
    SamplingConfig cfg{strategy, 5, 2};
    sample_neurons(cfg, views(buckets), visited, rng, out);
    EXPECT_TRUE(out.empty()) << to_string(strategy);
  }
}

// ---------------------------------------------------------------------------
// Property test: empirical hard-threshold selection rate vs paper eq. 3.
// Simulate a neuron whose bucket membership in each of L tables is an
// independent Bernoulli(q); the selection probability for threshold m must
// match the closed-form binomial tail.
// ---------------------------------------------------------------------------

struct ThresholdCase {
  double q;  // per-table collision probability p^K
  int m;
};

class ThresholdProperty : public ::testing::TestWithParam<ThresholdCase> {};

TEST_P(ThresholdProperty, EmpiricalMatchesClosedForm) {
  const auto [q, m] = GetParam();
  constexpr int kL = 10;
  constexpr int kTrials = 20'000;
  Rng rng(static_cast<std::uint64_t>(m) * 1'000 +
          static_cast<std::uint64_t>(q * 100));
  VisitedSet visited(4);
  int selected = 0;
  std::vector<Index> out;
  for (int trial = 0; trial < kTrials; ++trial) {
    Buckets buckets(kL);
    for (int t = 0; t < kL; ++t) {
      if (rng.uniform_double() < q) buckets[t].push_back(0);
    }
    SamplingConfig cfg{SamplingStrategy::kHardThreshold, 100, m};
    sample_neurons(cfg, views(buckets), visited, rng, out);
    selected += out.empty() ? 0 : 1;
  }
  const double expected = binomial_tail(kL, q, m);
  EXPECT_NEAR(static_cast<double>(selected) / kTrials, expected, 0.02)
      << "q=" << q << " m=" << m;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ThresholdProperty,
    ::testing::Values(ThresholdCase{0.2, 1}, ThresholdCase{0.2, 3},
                      ThresholdCase{0.5, 1}, ThresholdCase{0.5, 3},
                      ThresholdCase{0.5, 5}, ThresholdCase{0.8, 5},
                      ThresholdCase{0.8, 9}));

// ---------------------------------------------------------------------------
// Collision math (paper eqs. 2-3, Figure 11 oracle).
// ---------------------------------------------------------------------------

TEST(Collision, SimhashEndpoints) {
  EXPECT_NEAR(simhash_collision_probability(1.0), 1.0, 1e-12);
  EXPECT_NEAR(simhash_collision_probability(-1.0), 0.0, 1e-12);
  EXPECT_NEAR(simhash_collision_probability(0.0), 0.5, 1e-12);
}

TEST(Collision, MetaHashPowers) {
  EXPECT_NEAR(meta_hash_probability(0.5, 3), 0.125, 1e-12);
  EXPECT_NEAR(meta_hash_probability(1.0, 9), 1.0, 1e-12);
}

TEST(Collision, AnyBucketMonotoneInL) {
  const double p = 0.7;
  double prev = 0.0;
  for (int l = 1; l <= 50; l += 7) {
    const double cur = any_bucket_probability(p, 3, l);
    EXPECT_GT(cur, prev);
    prev = cur;
  }
  EXPECT_LE(prev, 1.0);
}

TEST(Collision, VanillaEq2Endpoints) {
  // tau = 0: probability of colliding in none of the probed tables.
  EXPECT_NEAR(vanilla_selection_probability(0.5, 1, 10, 0),
              std::pow(0.5, 10), 1e-9);
  // tau = L with p = 1: certain.
  EXPECT_NEAR(vanilla_selection_probability(1.0, 2, 10, 10), 1.0, 1e-12);
}

TEST(Collision, BinomialTailSanity) {
  EXPECT_DOUBLE_EQ(binomial_tail(10, 0.5, 0), 1.0);
  EXPECT_DOUBLE_EQ(binomial_tail(10, 0.5, 11), 0.0);
  EXPECT_NEAR(binomial_tail(10, 0.5, 5), 0.623046875, 1e-9);
  EXPECT_NEAR(binomial_tail(1, 0.3, 1), 0.3, 1e-12);
}

TEST(Collision, HardThresholdMonotoneInPAndAntitoneInM) {
  for (int m = 1; m < 9; m += 2) {
    double prev = -1.0;
    for (double p = 0.1; p <= 0.95; p += 0.1) {
      const double cur = hard_threshold_selection_probability(p, 1, 10, m);
      EXPECT_GE(cur, prev);
      prev = cur;
    }
  }
  for (double p : {0.3, 0.6, 0.9}) {
    double prev = 2.0;
    for (int m = 1; m <= 9; ++m) {
      const double cur = hard_threshold_selection_probability(p, 1, 10, m);
      EXPECT_LE(cur, prev);
      prev = cur;
    }
  }
}

}  // namespace
}  // namespace slide
