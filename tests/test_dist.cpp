// Distributed model-parallelism tests (src/dist/): frame codec fuzzing
// over every corruption kind (the xc_reader malformed-input contract),
// message round-trips, TCP + shared-memory transport semantics, the RPC
// client's retry/timeout/degrade failure model, and the headline
// equivalence anchor — a 2-worker DistributedSampledLayer training run is
// bit-identical to ShardedSampledLayer(S=2) under sync maintenance.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <filesystem>
#include <memory>
#include <numeric>
#include <sstream>
#include <thread>
#include <vector>

#include "core/builder.h"
#include "core/serialize.h"
#include "core/sharded_layer.h"
#include "core/trainer.h"
#include "data/synthetic.h"
#include "dist/client.h"
#include "dist/distributed_layer.h"
#include "dist/transport.h"
#include "dist/worker.h"
#include "serve/engine.h"
#include "serve/snapshot.h"

namespace slide {
namespace {

using dist::Frame;
using dist::FrameError;
using dist::FrameErrorKind;
using dist::MsgType;

// ---- Shared fixtures (mirrors tests/test_sharded_layer.cpp) ----------------

SyntheticDataset planted(Index features = 300, Index labels = 61,
                         std::uint64_t seed = 911) {
  SyntheticConfig cfg;
  cfg.feature_dim = features;
  cfg.label_dim = labels;
  cfg.num_train = 400;
  cfg.num_test = 100;
  cfg.features_per_label = 10;
  cfg.active_per_label = 6;
  cfg.noise_features = 2;
  cfg.seed = seed;
  return make_synthetic_xc(cfg);
}

HashFamilyConfig small_family() {
  HashFamilyConfig family;
  family.kind = HashFamilyKind::kSimhash;
  family.k = 5;
  family.l = 12;
  return family;
}

/// A fleet of in-process shard workers on loopback TCP ephemeral ports.
struct Fleet {
  std::vector<std::unique_ptr<dist::InProcessWorker>> workers;
  std::vector<std::string> endpoints;

  explicit Fleet(int n) {
    for (int s = 0; s < n; ++s) {
      workers.push_back(
          std::make_unique<dist::InProcessWorker>("tcp:127.0.0.1:0"));
      endpoints.push_back(workers.back()->endpoint());
    }
  }
  void stop() {
    for (auto& w : workers) w->stop();
  }
};

/// Builder-backed config; shards > 0 -> in-process sharded layer,
/// endpoints non-empty -> distributed layer. Identical otherwise — the
/// equivalence tests rely on that.
NetworkConfig net_config(const SyntheticDataset& data, int shards,
                         const std::vector<std::string>& endpoints = {},
                         Index target = 20) {
  NetworkBuilder b(data.train.feature_dim());
  b.dense(16).sampled(data.train.label_dim(), small_family(), target);
  b.table({.range_pow = 9, .bucket_size = 64});
  if (shards > 0) b.shards(shards);
  if (!endpoints.empty()) b.distributed(endpoints);
  b.max_batch(32).seed(123);
  return b.to_config();
}

dist::DistributedSampledLayer& dist_output(Network& net) {
  auto* layer = dynamic_cast<dist::DistributedSampledLayer*>(
      &net.stack(net.stack_depth() - 1));
  EXPECT_NE(layer, nullptr);
  return *layer;
}

std::span<const float> global_row(const Layer& layer, Index u) {
  for (int s = layer.num_shards() - 1; s >= 0; --s) {
    const Index off = layer.shard_row_offset(s);
    const std::span<const float> w = layer.shard_weights(s);
    const Index rows = static_cast<Index>(w.size() / layer.fan_in());
    if (u >= off && u < off + rows) {
      return w.subspan(static_cast<std::size_t>(u - off) * layer.fan_in(),
                       layer.fan_in());
    }
  }
  ADD_FAILURE() << "row " << u << " not covered by any shard";
  return {};
}

float global_bias(const Layer& layer, Index u) {
  for (int s = layer.num_shards() - 1; s >= 0; --s) {
    const Index off = layer.shard_row_offset(s);
    const std::span<const float> b = layer.shard_bias(s);
    if (u >= off && u < off + static_cast<Index>(b.size()))
      return b[u - off];
  }
  ADD_FAILURE() << "bias " << u << " not covered by any shard";
  return 0.0f;
}

bool bytes_equal(std::span<const float> a, std::span<const float> b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0;
}

/// Asserts every logical weight row and bias of two same-shape layers is
/// bit-identical, regardless of either layer's shard partition.
void expect_same_parameters(const Layer& a, const Layer& b) {
  ASSERT_EQ(a.units(), b.units());
  ASSERT_EQ(a.fan_in(), b.fan_in());
  for (Index u = 0; u < a.units(); ++u) {
    ASSERT_TRUE(bytes_equal(global_row(a, u), global_row(b, u)))
        << "weight row " << u;
    const float ba = global_bias(a, u), bb = global_bias(b, u);
    ASSERT_EQ(std::memcmp(&ba, &bb, sizeof(float)), 0) << "bias " << u;
  }
}

void train(Network& net, const SyntheticDataset& data, long iterations) {
  TrainerConfig tc;
  tc.batch_size = 32;
  tc.num_threads = 1;  // the bit-exactness contract is single-threaded
  tc.learning_rate = 5e-3f;
  Trainer trainer(net, tc);
  trainer.train(data.train, iterations);
}

/// Decodes a raw byte buffer the way a transport does: header, then
/// whatever payload bytes follow. Surfaces every corruption as FrameError.
Frame decode_buffer(const std::vector<std::uint8_t>& bytes) {
  if (bytes.size() < dist::kFrameHeaderBytes)
    throw FrameError(FrameErrorKind::kTruncated, "short header");
  const dist::FrameHeader h = dist::decode_frame_header(bytes.data());
  std::vector<std::uint8_t> payload(bytes.begin() + dist::kFrameHeaderBytes,
                                    bytes.end());
  return dist::assemble_frame(h, std::move(payload));
}

FrameErrorKind kind_of(const std::vector<std::uint8_t>& bytes) {
  try {
    (void)decode_buffer(bytes);
  } catch (const FrameError& e) {
    return e.kind();
  }
  ADD_FAILURE() << "corrupt buffer decoded cleanly";
  return FrameErrorKind::kBadFormat;
}

Frame sample_frame() {
  Frame f;
  f.type = static_cast<std::uint8_t>(MsgType::kForwardActive);
  dist::PayloadWriter w(f.payload);
  w.u32(7);
  w.str("payload-under-test");
  std::vector<float> values(37);
  for (std::size_t i = 0; i < values.size(); ++i)
    values[i] = 0.25f * static_cast<float>(i);
  w.floats(values);
  return f;
}

// ---- Frame codec + corruption-kind fuzzing (satellite 2) -------------------

TEST(DistFrame, RoundTripPreservesTypeFlagsAndPayload) {
  const Frame f = sample_frame();
  std::vector<std::uint8_t> encoded;
  dist::encode_frame(f, encoded);
  ASSERT_EQ(encoded.size(), dist::kFrameHeaderBytes + f.payload.size());

  const Frame back = decode_buffer(encoded);
  EXPECT_EQ(back.type, f.type);
  EXPECT_EQ(back.flags, f.flags);
  EXPECT_EQ(back.payload, f.payload);

  // The bf16 flag survives the wire.
  Frame flagged = f;
  flagged.flags = dist::kFlagBf16Values;
  dist::encode_frame(flagged, encoded);
  EXPECT_TRUE(decode_buffer(encoded).bf16_values());
}

TEST(DistFrame, EveryCorruptionKindIsRejectedTyped) {
  const Frame f = sample_frame();
  std::vector<std::uint8_t> good;
  dist::encode_frame(f, good);

  // Bad magic: any of the first four bytes off by one.
  for (std::size_t i = 0; i < 4; ++i) {
    std::vector<std::uint8_t> bad = good;
    bad[i] ^= 0x01;
    EXPECT_EQ(kind_of(bad), FrameErrorKind::kBadMagic) << "magic byte " << i;
  }

  // Oversized: length field beyond kMaxFramePayload.
  {
    std::vector<std::uint8_t> bad = good;
    const std::uint32_t huge =
        static_cast<std::uint32_t>(dist::kMaxFramePayload) + 1;
    std::memcpy(bad.data() + 8, &huge, sizeof(huge));
    EXPECT_EQ(kind_of(bad), FrameErrorKind::kOversized);
  }

  // Bad CRC: any payload byte flipped.
  for (std::size_t i : {std::size_t{0}, f.payload.size() / 2,
                        f.payload.size() - 1}) {
    std::vector<std::uint8_t> bad = good;
    bad[dist::kFrameHeaderBytes + i] ^= 0x80;
    EXPECT_EQ(kind_of(bad), FrameErrorKind::kBadCrc) << "payload byte " << i;
  }

  // Truncated: stream ends inside the header or inside the payload.
  for (std::size_t keep :
       {std::size_t{0}, std::size_t{7}, dist::kFrameHeaderBytes - 1,
        dist::kFrameHeaderBytes, good.size() - 1}) {
    std::vector<std::uint8_t> bad(good.begin(),
                                  good.begin() + static_cast<long>(keep));
    EXPECT_EQ(kind_of(bad), FrameErrorKind::kTruncated) << "kept " << keep;
  }
}

TEST(DistFrame, FuzzedMutationsNeverEscapeTheTypedErrorContract) {
  // Mirror of the xc_reader corruption fuzz: random single-byte mutations,
  // truncations, and garbage buffers must either decode to the original
  // frame (mutation hit a dont-care bit) or throw FrameError — nothing
  // else, no crashes, no allocation bombs.
  const Frame f = sample_frame();
  std::vector<std::uint8_t> good;
  dist::encode_frame(f, good);
  Rng rng(2024);
  int rejected = 0;
  for (int iter = 0; iter < 400; ++iter) {
    std::vector<std::uint8_t> bytes = good;
    switch (rng.uniform(3)) {
      case 0:  // flip a random byte
        bytes[rng.uniform(static_cast<std::uint32_t>(bytes.size()))] ^=
            static_cast<std::uint8_t>(1u << rng.uniform(8));
        break;
      case 1:  // truncate at a random point
        bytes.resize(rng.uniform(static_cast<std::uint32_t>(bytes.size())));
        break;
      default:  // pure garbage of random length
        bytes.resize(rng.uniform(64));
        for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.uniform(256));
        break;
    }
    try {
      const Frame back = decode_buffer(bytes);
      // Survivors must be byte-exact or have mutated only type/flags
      // (opaque at the frame layer; the message layer validates them).
      EXPECT_EQ(back.payload, f.payload);
    } catch (const FrameError&) {
      ++rejected;
    }
  }
  EXPECT_GT(rejected, 300) << "fuzzer stopped corrupting anything";
}

// A kHello frame whose u32 version field is cut to two bytes.
Frame hello_half_payload() {
  Frame f = dist::HelloMsg{}.to_frame();
  f.payload.resize(2);
  return f;
}

TEST(DistFrame, PayloadReaderRejectsOverrunsAndAllocationBombs) {
  // Overrun: scalar reads past the end.
  {
    const std::uint8_t small[2] = {1, 2};
    dist::PayloadReader r({small, 2});
    EXPECT_THROW((void)r.u64(), FrameError);
  }
  // Allocation bomb: a count whose elements cannot fit in the remaining
  // bytes must be rejected before resize(), not after a 16 GiB new[].
  {
    std::vector<std::uint8_t> buf;
    dist::PayloadWriter w(buf);
    w.u32(0xFFFFFFFFu);  // "4 billion floats follow" (they do not)
    dist::PayloadReader r({buf.data(), buf.size()});
    std::vector<float> out;
    EXPECT_THROW(r.floats(out), FrameError);
    EXPECT_TRUE(out.empty());
  }
  // Same for strings and index runs.
  {
    std::vector<std::uint8_t> buf;
    dist::PayloadWriter w(buf);
    w.u32(1000);
    w.u8('x');
    dist::PayloadReader r({buf.data(), buf.size()});
    EXPECT_THROW((void)r.str(), FrameError);
  }
  // Unknown message type byte.
  Frame f;
  f.type = 200;
  EXPECT_THROW((void)dist::msg_type_of(f), FrameError);
  try {
    (void)dist::msg_type_of(f);
  } catch (const FrameError& e) {
    EXPECT_EQ(e.kind(), FrameErrorKind::kBadFormat);
  }
  // Truncated *message* payloads surface as kBadFormat too: a valid frame
  // whose payload stops mid-struct.
  EXPECT_THROW((void)dist::HelloMsg::from_frame(hello_half_payload()),
               FrameError);
}

// ---- Message round-trips ---------------------------------------------------

void expect_same_rng(const Rng::State& a, const Rng::State& b) {
  Rng ra(1), rb(2);
  ra.set_state(a);
  rb.set_state(b);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(ra.uniform(1u << 20), rb.uniform(1u << 20));
}

TEST(DistProtocol, ForwardAndQueryMessagesRoundTrip) {
  Rng rng(99);
  (void)rng.uniform(17);  // advance off the seed state

  dist::ForwardMsg fwd;
  fwd.slot = 3;
  fwd.rng = rng.state();
  fwd.forced_local = {2, 11, 29};
  ActiveSet dense;
  dense.dense_width = 16;
  dense.act.resize(16, 0.0f);
  dense.act[1] = 0.5f;
  dense.act[7] = -2.25f;
  fwd.prev = dist::WireActiveSet::capture(dense);
  // Sparse on the wire: the zeros of the dense set are dropped...
  EXPECT_EQ(fwd.prev.ids.size(), 2u);

  const dist::ForwardMsg fwd2 =
      dist::ForwardMsg::from_frame(fwd.to_frame(/*bf16=*/false));
  EXPECT_EQ(fwd2.slot, 3);
  EXPECT_EQ(fwd2.forced_local, fwd.forced_local);
  expect_same_rng(fwd2.rng, fwd.rng);
  // ...and the reconstruction restores the exact dense shape.
  ActiveSet back;
  fwd2.prev.reconstruct(back);
  ASSERT_TRUE(back.ids.empty());
  ASSERT_EQ(back.dense_width, 16u);
  ASSERT_EQ(back.act.size(), 16u);
  for (Index i = 0; i < 16; ++i) EXPECT_EQ(back.act[i], dense.act[i]);
  ASSERT_EQ(back.err.size(), 16u);
  for (float e : back.err) EXPECT_EQ(e, 0.0f);

  // A sparse prev set keeps its id run.
  ActiveSet sparse;
  sparse.ids = {4, 9, 13};
  sparse.act = {1.0f, 2.0f, 3.0f};
  dist::QueryTopkMsg q;
  q.rng = rng.state();
  q.exact = true;
  q.budget = 12;
  q.prev = dist::WireActiveSet::capture(sparse);
  const dist::QueryTopkMsg q2 =
      dist::QueryTopkMsg::from_frame(q.to_frame(false));
  EXPECT_TRUE(q2.exact);
  EXPECT_EQ(q2.budget, 12u);
  ActiveSet sback;
  q2.prev.reconstruct(sback);
  EXPECT_EQ(sback.ids, sparse.ids);
  EXPECT_EQ(sback.act, sparse.act);
  EXPECT_EQ(sback.dense_width, 0u);
}

TEST(DistProtocol, Bf16ValuesAreApproximateAndHalfTheBytes) {
  ActiveSet prev;
  prev.ids.resize(64);
  prev.act.resize(64);
  Rng rng(5);
  for (std::size_t i = 0; i < 64; ++i) {
    prev.ids[i] = static_cast<Index>(i);
    prev.act[i] = rng.uniform_float() * 8.0f - 4.0f;
  }
  const dist::WireActiveSet set = dist::WireActiveSet::capture(prev);
  std::vector<std::uint8_t> fp32, bf16;
  {
    dist::PayloadWriter w(fp32);
    set.write(w, false);
  }
  {
    dist::PayloadWriter w(bf16);
    set.write(w, true);
  }
  EXPECT_LT(bf16.size(), fp32.size() - 64);  // 2 bytes/value saved

  dist::WireActiveSet back;
  dist::PayloadReader r({bf16.data(), bf16.size()});
  back.read(r, true);
  ASSERT_EQ(back.act.size(), 64u);
  for (std::size_t i = 0; i < 64; ++i) {
    // bf16 keeps 8 mantissa bits: ~0.4% relative error.
    EXPECT_NEAR(back.act[i], prev.act[i],
                0.01f * (1.0f + std::fabs(prev.act[i])));
  }
}

TEST(DistProtocol, ControlMessagesRoundTrip) {
  // InitShard carries the derived per-shard config verbatim.
  SampledLayer::Config global;
  global.units = 61;
  global.fan_in = 16;
  global.family = small_family();
  global.table.range_pow = 9;
  global.sampling.target = 20;
  global.sampling.inference_budget = 12;
  global.seed = 123;
  dist::InitShardMsg init;
  init.shard_index = 1;
  init.num_shards = 2;
  init.row_offset = 31;
  init.global_units = 61;
  init.batch_slots = 32;
  init.config = derive_shard_config(global, 30, 1);
  init.checkpoint_path = "/tmp/some.ckpt.shard1of2";
  const dist::InitShardMsg i2 =
      dist::InitShardMsg::from_frame(init.to_frame());
  EXPECT_EQ(i2.shard_index, 1);
  EXPECT_EQ(i2.num_shards, 2);
  EXPECT_EQ(i2.row_offset, 31u);
  EXPECT_EQ(i2.global_units, 61u);
  EXPECT_EQ(i2.batch_slots, 32);
  EXPECT_EQ(i2.checkpoint_path, init.checkpoint_path);
  EXPECT_EQ(i2.config.units, init.config.units);
  EXPECT_EQ(i2.config.sampling.target, init.config.sampling.target);
  EXPECT_EQ(i2.config.sampling.inference_budget,
            init.config.sampling.inference_budget);
  EXPECT_EQ(i2.config.table.range_pow, init.config.table.range_pow);
  EXPECT_EQ(i2.config.seed, init.config.seed);

  dist::BackwardMsg bwd;
  bwd.slot = 7;
  bwd.err = {0.25f, -1.0f};
  bwd.prev_err = {0.0f, 1.0f, 2.0f};
  const dist::BackwardMsg b2 = dist::BackwardMsg::from_frame(bwd.to_frame(false));
  EXPECT_EQ(b2.slot, 7);
  EXPECT_EQ(b2.err, bwd.err);
  EXPECT_EQ(b2.prev_err, bwd.prev_err);

  dist::SetShardWeightsMsg sw;
  sw.weights = {1.0f, 2.0f, 3.0f, 4.0f};
  sw.bias = {-1.0f, -2.0f};
  const dist::SetShardWeightsMsg sw2 =
      dist::SetShardWeightsMsg::from_frame(sw.to_frame());
  EXPECT_EQ(sw2.weights, sw.weights);
  EXPECT_EQ(sw2.bias, sw.bias);

  dist::FetchShardResp fetch;
  fetch.row_offset = 31;
  fetch.rows = 30;
  fetch.fan_in = 16;
  fetch.weights.assign(480, 0.5f);
  fetch.bias.assign(30, 0.125f);
  const dist::FetchShardResp f2 =
      dist::FetchShardResp::from_frame(fetch.to_frame());
  EXPECT_EQ(f2.row_offset, 31u);
  EXPECT_EQ(f2.rows, 30u);
  EXPECT_EQ(f2.fan_in, 16u);
  EXPECT_EQ(f2.weights, fetch.weights);
  EXPECT_EQ(f2.bias, fetch.bias);

  dist::ErrorResp err;
  err.message = "shard exploded (test)";
  EXPECT_EQ(dist::ErrorResp::from_frame(err.to_frame()).message, err.message);

  dist::StatsResp stats;
  stats.active_fraction = 0.015;
  stats.rebuild_count = 42;
  stats.delta_reinserted = 7;
  const dist::StatsResp s2 = dist::StatsResp::from_frame(stats.to_frame());
  EXPECT_DOUBLE_EQ(s2.active_fraction, 0.015);
  EXPECT_EQ(s2.rebuild_count, 42);
  EXPECT_EQ(s2.delta_reinserted, 7);

  dist::MaybeRebuildMsg mr;
  mr.iteration = 1234;
  EXPECT_EQ(dist::MaybeRebuildMsg::from_frame(mr.to_frame()).iteration, 1234);
  dist::MaybeRebuildResp mrr;
  mrr.fired = true;
  EXPECT_TRUE(dist::MaybeRebuildResp::from_frame(mrr.to_frame()).fired);
  dist::ApplyUpdatesMsg au;
  au.lr = 0.005f;
  EXPECT_EQ(dist::ApplyUpdatesMsg::from_frame(au.to_frame()).lr, 0.005f);
  dist::CheckpointShardMsg cs;
  cs.path = "/tmp/base";
  EXPECT_EQ(dist::CheckpointShardMsg::from_frame(cs.to_frame()).path, "/tmp/base");
}

// ---- Transports ------------------------------------------------------------

struct Pair {
  std::unique_ptr<dist::Transport> client;
  std::unique_ptr<dist::Transport> server;
};

Pair connect_pair(const std::string& endpoint) {
  Pair pair;
  auto listener = dist::listen_endpoint(endpoint);
  std::thread dial([&pair, &listener] {
    pair.client = dist::connect_endpoint(listener->endpoint());
  });
  pair.server = listener->accept(/*timeout_ms=*/5000);
  dial.join();
  return pair;
}

void exercise_transport(Pair& p, int frames) {
  const Frame f = sample_frame();
  std::thread echo([&p, frames] {
    for (int i = 0; i < frames; ++i) p.server->send(p.server->recv(10000));
  });
  for (int i = 0; i < frames; ++i) {
    p.client->send(f);
    const Frame back = p.client->recv(10000);
    ASSERT_EQ(back.payload, f.payload);
    ASSERT_EQ(back.type, f.type);
  }
  echo.join();
  const dist::WireCounters c = p.client->counters();
  EXPECT_EQ(c.frames_sent, static_cast<std::uint64_t>(frames));
  EXPECT_EQ(c.frames_received, static_cast<std::uint64_t>(frames));
  const std::uint64_t min_bytes =
      static_cast<std::uint64_t>(frames) *
      (dist::kFrameHeaderBytes + f.payload.size());
  EXPECT_GE(c.bytes_sent, min_bytes);
  EXPECT_GE(c.bytes_received, min_bytes);
}

TEST(DistTransport, TcpLoopbackRoundTripsFramesAndCounts) {
  Pair p = connect_pair("tcp:127.0.0.1:0");
  EXPECT_STREQ(p.client->kind(), "tcp");
  exercise_transport(p, 32);
}

TEST(DistTransport, ShmRingRoundTripsFramesAcrossWrap) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "slide_test_dist_ring")
          .string();
  Pair p = connect_pair("shm:" + path);
  EXPECT_STREQ(p.client->kind(), "shm");
  // Enough ~200-byte frames to lap any reasonable ring several times: a
  // wrap bug shows up as a CRC mismatch or a hang, either fails the test.
  exercise_transport(p, 4096);
  p.client->close();
  p.server->close();
  std::filesystem::remove(path);
}

TEST(DistTransport, TimeoutsAndClosesAreTyped) {
  // accept() with nobody dialing times out.
  auto listener = dist::listen_endpoint("tcp:127.0.0.1:0");
  EXPECT_THROW((void)listener->accept(50), dist::TransportTimeout);
  // The resolved endpoint is dialable: "tcp:127.0.0.1:<real port>".
  const std::string resolved = listener->endpoint();
  EXPECT_EQ(resolved.rfind("tcp:127.0.0.1:", 0), 0u);
  EXPECT_NE(resolved.substr(resolved.rfind(':') + 1), "0");
  listener->close();

  Pair p = connect_pair("tcp:127.0.0.1:0");
  // recv with a silent peer times out without closing the stream...
  EXPECT_THROW((void)p.client->recv(50), dist::TransportTimeout);
  // ...and the stream still works afterwards.
  p.server->send(sample_frame());
  EXPECT_EQ(p.client->recv(1000).payload, sample_frame().payload);

  // Peer shutdown surfaces as TransportClosed on both ends.
  p.server->close();
  EXPECT_THROW((void)p.client->recv(1000), dist::TransportClosed);
  EXPECT_THROW(p.server->send(sample_frame()), dist::TransportClosed);

  // Unknown endpoint schemes are rejected.
  EXPECT_THROW((void)dist::connect_endpoint("carrier-pigeon:coop:7"), Error);
  EXPECT_THROW((void)dist::listen_endpoint("carrier-pigeon:coop:7"), Error);
}

// ---- RPC client failure model (satellite 6) --------------------------------

TEST(DistClient, TimeoutExhaustionMarksUnhealthyAndFailsFast) {
  // A fake worker that handshakes correctly, then goes silent: the client
  // must re-wait `recv_retries` slices, then declare the worker gone.
  auto listener = dist::listen_endpoint("tcp:127.0.0.1:0");
  std::thread fake([&listener] {
    auto t = listener->accept(5000);
    try {
      (void)dist::HelloMsg::from_frame(t->recv(5000));
      Frame ok = dist::make_frame(MsgType::kHelloOk);
      dist::PayloadWriter w(ok.payload);
      w.u32(dist::kProtocolVersion);
      t->send(ok);
      (void)t->recv(5000);  // swallow the request, never answer
      (void)t->recv(5000);  // wait for the client to give up and close
    } catch (const dist::TransportError&) {
      // client closed — expected
    }
  });

  dist::ClientConfig cfg;
  cfg.rpc_timeout_ms = 50;
  cfg.recv_retries = 1;
  dist::ShardClient client(listener->endpoint(), cfg);
  client.connect();
  EXPECT_TRUE(client.healthy());

  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_THROW(
      (void)client.call(dist::make_frame(MsgType::kQuiesce), MsgType::kAck),
      dist::TransportTimeout);
  const auto waited = std::chrono::duration_cast<std::chrono::milliseconds>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
  // One timeout + one retry slice: at least 2x the budget, well under 10x.
  EXPECT_GE(waited, 90);
  EXPECT_LT(waited, 2000);
  EXPECT_FALSE(client.healthy());

  // Every later call fails fast with TransportClosed (no fresh timeout).
  EXPECT_THROW(
      (void)client.call(dist::make_frame(MsgType::kQuiesce), MsgType::kAck),
      dist::TransportClosed);
  fake.join();
  listener->close();
}

TEST(DistClient, WorkerSideErrorsKeepTheClientHealthy) {
  dist::InProcessWorker worker("tcp:127.0.0.1:0");
  dist::ShardClient client(worker.endpoint(), {});
  client.connect();

  // Forwarding before kInitShard is a worker-side slide::Error: it comes
  // back as kErrorResp, rethrown as Error, and the stream stays usable.
  EXPECT_THROW(
      (void)client.call(dist::make_frame(MsgType::kFetchShard),
                        MsgType::kFetchShardResp),
      Error);
  EXPECT_TRUE(client.healthy());

  // A proper init on the same stream succeeds afterwards.
  SampledLayer::Config global;
  global.units = 24;
  global.fan_in = 8;
  global.family = small_family();
  global.table.range_pow = 7;
  global.sampling.target = 8;
  global.seed = 77;
  dist::InitShardMsg init;
  init.shard_index = 0;
  init.num_shards = 1;
  init.row_offset = 0;
  init.global_units = 24;
  init.batch_slots = 2;
  init.config = derive_shard_config(global, 24, 0);
  (void)client.call(init.to_frame(), MsgType::kAck);

  const Frame resp =
      client.call(dist::make_frame(MsgType::kFetchShard), MsgType::kFetchShardResp);
  const dist::FetchShardResp fetch = dist::FetchShardResp::from_frame(resp);
  EXPECT_EQ(fetch.rows, 24u);
  EXPECT_EQ(fetch.fan_in, 8u);
  EXPECT_EQ(fetch.weights.size(), 24u * 8u);
  EXPECT_TRUE(client.healthy());

  client.shutdown_worker();
  client.close();
  worker.stop();
}

// ---- Builder wiring --------------------------------------------------------

TEST(DistBuilder, DistributedAndShardsAreMutuallyExclusive) {
  const auto data = planted();
  {
    NetworkBuilder b(data.train.feature_dim());
    b.dense(16).sampled(data.train.label_dim(), small_family(), 20);
    b.shards(2);
    EXPECT_THROW(b.distributed({"tcp:127.0.0.1:1", "tcp:127.0.0.1:2"}), Error);
  }
  {
    NetworkBuilder b(data.train.feature_dim());
    b.dense(16).sampled(data.train.label_dim(), small_family(), 20);
    b.distributed({"tcp:127.0.0.1:1", "tcp:127.0.0.1:2"});
    EXPECT_THROW(b.shards(2), Error);
  }
  // .distributed on a dense (non-hashed) layer is rejected.
  {
    NetworkBuilder b(10);
    b.dense(8).dense(5, Activation::kSoftmax);
    EXPECT_THROW(b.distributed({"tcp:127.0.0.1:1"}), Error);
  }
  // .shard_checkpoint without a distributed layer is rejected.
  {
    NetworkBuilder b(data.train.feature_dim());
    b.dense(16).sampled(data.train.label_dim(), small_family(), 20);
    EXPECT_THROW(b.shard_checkpoint("/tmp/base"), Error);
  }
  // The config records the endpoints.
  {
    NetworkBuilder b(data.train.feature_dim());
    b.dense(16).sampled(data.train.label_dim(), small_family(), 20);
    b.distributed({"tcp:127.0.0.1:1", "tcp:127.0.0.1:2"});
    const NetworkConfig cfg = b.to_config();
    ASSERT_EQ(cfg.layers.back().endpoints.size(), 2u);
    EXPECT_EQ(cfg.layers.back().shards, 0);
  }
}

// ---- The equivalence anchor (satellite 3) ----------------------------------

TEST(DistEquivalence, TwoWorkerTrainingIsBitIdenticalToShardedS2) {
  const auto data = planted();
  Fleet fleet(2);

  Network sharded(net_config(data, 2), 1);
  Network distributed(net_config(data, 0, fleet.endpoints), 1);
  ASSERT_EQ(distributed.stack(0).kind(), LayerKind::kDistributed);
  ASSERT_EQ(distributed.stack(0).num_shards(), 2);

  train(sharded, data, 40);
  train(distributed, data, 40);

  // The dense stack below the parallel layer trained on the gradients the
  // output layer folded back — byte equality here proves the whole
  // backward path, not just the output shard math.
  ASSERT_TRUE(bytes_equal(sharded.embedding().weights_span(),
                          distributed.embedding().weights_span()));
  ASSERT_TRUE(bytes_equal(sharded.embedding().bias_span(),
                          distributed.embedding().bias_span()));

  // Output-layer weights: refresh the coordinator cache from the workers,
  // then compare every logical row bit for bit.
  auto& dl = dist_output(distributed);
  dl.flush_maintenance();
  expect_same_parameters(sharded.stack(0), distributed.stack(0));

  // Inference parity, exact and sampled (same-seed contexts).
  InferenceContext ctx_a(sharded, 7), ctx_b(distributed, 7);
  for (std::size_t i = 0; i < 30; ++i) {
    const SparseVector& x = data.test[i].features;
    EXPECT_EQ(sharded.predict_top1(x, ctx_a, true),
              distributed.predict_top1(x, ctx_b, true));
    EXPECT_EQ(sharded.predict_topk(x, ctx_a, 5, true),
              distributed.predict_topk(x, ctx_b, 5, true));
    EXPECT_EQ(sharded.predict_topk(x, ctx_a, 5, false),
              distributed.predict_topk(x, ctx_b, 5, false));
  }

  // Wire accounting is monotonic and survives the whole run. (The <= 10%
  // sparse-vs-dense acceptance ratio is asserted on realistically wide
  // layers by examples/dist_quickstart and bench/dist_transport; this
  // 61-label test layer is far too narrow for it to be meaningful.)
  const dist::WireCounters wc = dl.wire_counters();
  EXPECT_GT(wc.frames_sent, 0u);
  EXPECT_GT(wc.bytes_sent, 0u);
  EXPECT_EQ(wc.frames_sent, wc.frames_received);

  dl.shutdown_workers();
  fleet.stop();
}

TEST(DistEquivalence, CheckpointV3RoundTripsAcrossLayerKinds) {
  const auto data = planted();
  Fleet fleet(2);
  Network sharded(net_config(data, 2), 1);
  Network distributed(net_config(data, 0, fleet.endpoints), 1);
  train(sharded, data, 20);

  // Sharded -> distributed: load pushes the cache into the workers
  // (kSetShardWeights); re-pulling it proves the workers really hold the
  // new parameters rather than the coordinator's cache masking them.
  std::stringstream buffer(std::ios::in | std::ios::out | std::ios::binary);
  save_weights(sharded, buffer);
  buffer.seekg(0);
  load_weights(distributed, buffer);
  auto& dl = dist_output(distributed);
  dl.refresh_checkpoint_cache();
  expect_same_parameters(sharded.stack(0), distributed.stack(0));

  // Distributed -> sharded: the flushed cache serializes worker state.
  train(distributed, data, 10);
  dl.flush_maintenance();
  std::stringstream buffer2(std::ios::in | std::ios::out | std::ios::binary);
  save_weights(distributed, buffer2);
  buffer2.seekg(0);
  Network reloaded(net_config(data, 2), 1);
  load_weights(reloaded, buffer2);
  expect_same_parameters(distributed.stack(0), reloaded.stack(0));

  dl.shutdown_workers();
  fleet.stop();
}

// ---- Per-shard checkpoint files + serving boot -----------------------------

TEST(DistCheckpoint, ShardFilesBootFreshWorkersBitExact) {
  const auto data = planted();
  const auto tmp = std::filesystem::temp_directory_path();
  const std::string base = (tmp / "slide_test_dist_shards").string();
  const std::string coord = (tmp / "slide_test_dist_coord.ckpt").string();

  std::vector<std::vector<float>> saved_w(2), saved_b(2);
  Index trained_top = 0;
  SparseVector probe = data.test[0].features;
  {
    Fleet fleet(2);
    Network net(net_config(data, 0, fleet.endpoints), 1);
    train(net, data, 20);
    auto& dl = dist_output(net);
    net.rebuild_all(nullptr);
    dl.flush_maintenance();
    dl.checkpoint_shards(base);
    save_weights_file(net, coord);
    for (int s = 0; s < 2; ++s) {
      const auto w = dl.shard_weights(s);
      const auto b = dl.shard_bias(s);
      saved_w[s].assign(w.begin(), w.end());
      saved_b[s].assign(b.begin(), b.end());
    }
    InferenceContext ctx(net);
    trained_top = net.predict_top1(probe, ctx, /*exact=*/true);
    dl.shutdown_workers();
    fleet.stop();
  }

  // The shard files exist and carry the right identity headers.
  for (int s = 0; s < 2; ++s) {
    const std::string path = shard_file_path(base, s, 2);
    ASSERT_TRUE(std::filesystem::exists(path)) << path;
    const ShardFileInfo info = peek_shard_file(path);
    EXPECT_EQ(info.shard_index, static_cast<std::uint32_t>(s));
    EXPECT_EQ(info.num_shards, 2u);
    EXPECT_EQ(info.fan_in, 16u);
  }

  // Fresh workers + ModelStore::from_shard_checkpoints: each worker loads
  // its OWN file during kInitShard (no weight bytes cross the wire), the
  // coordinator checkpoint restores the dense stack below.
  {
    Fleet fleet(2);
    NetworkConfig cfg = net_config(data, 0, fleet.endpoints);
    auto store = ModelStore::from_shard_checkpoints(cfg, base, coord);
    const Network& net = *store->current()->network;
    const auto* dlp = dynamic_cast<const dist::DistributedSampledLayer*>(
        &net.stack(net.stack_depth() - 1));
    ASSERT_NE(dlp, nullptr);
    const auto& dl = *dlp;
    for (int s = 0; s < 2; ++s) {
      EXPECT_TRUE(bytes_equal(dl.shard_weights(s),
                              {saved_w[s].data(), saved_w[s].size()}))
          << "shard " << s << " weights";
      EXPECT_TRUE(bytes_equal(dl.shard_bias(s),
                              {saved_b[s].data(), saved_b[s].size()}))
          << "shard " << s << " bias";
    }
    InferenceContext ctx(net);
    EXPECT_EQ(net.predict_top1(probe, ctx, /*exact=*/true), trained_top);

    // Serve through the engine: the stats surface the distributed wiring.
    ServeConfig serve_cfg;
    serve_cfg.num_workers = 1;
    serve_cfg.exact = true;
    InferenceEngine engine(store, serve_cfg);
    auto f = engine.submit(probe, {.top_k = 3});
    ASSERT_TRUE(f.has_value());
    EXPECT_FALSE(f->get().labels.empty());
    const ServeStats stats = engine.stats();
    EXPECT_TRUE(stats.distributed);
    EXPECT_GT(stats.wire_bytes_sent, 0u);
    EXPECT_GT(stats.wire_bytes_received, 0u);
    EXPECT_EQ(stats.unhealthy_shards, 0);
    engine.stop();
    // The store's Network destructor shuts the workers down (kShutdown).
    store.reset();
    fleet.stop();
  }

  for (int s = 0; s < 2; ++s)
    std::filesystem::remove(shard_file_path(base, s, 2));
  std::filesystem::remove(coord);
}

// ---- Degraded mode (satellite 6) -------------------------------------------

TEST(DistDegraded, InferenceSkipsDeadShardsTrainingPropagates) {
  const auto data = planted();
  Fleet fleet(2);
  Network net(net_config(data, 0, fleet.endpoints), 1);
  train(net, data, 10);
  net.rebuild_all(nullptr);
  auto& dl = dist_output(net);
  EXPECT_EQ(dl.unhealthy_shards(), 0);

  // Kill worker 1. The next inference marks it unhealthy and answers from
  // the surviving shard: every candidate id must come from shard 0's rows.
  fleet.workers[1]->stop();
  InferenceContext ctx(net);
  std::vector<Index> ids;
  std::vector<float> act;
  Rng rng(17);
  VisitedSet visited(net.max_sampled_units());
  std::vector<float> hidden(net.config().hidden_units);
  net.embedding().forward_inference(data.test[0].features, hidden.data());
  dl.forward_inference({}, hidden, /*exact=*/true, rng, visited, ids, act);
  ASSERT_FALSE(ids.empty());
  for (Index id : ids) EXPECT_LT(id, dl.shard_offset(1));
  EXPECT_EQ(dl.unhealthy_shards(), 1);

  // Top-k keeps answering too (degraded, but never hanging or throwing).
  const auto topk = net.predict_topk(data.test[1].features, ctx, 5, true);
  EXPECT_FALSE(topk.empty());
  for (Index id : topk) EXPECT_LT(id, dl.shard_offset(1));

  // Training against a dead shard must NOT silently degrade: dropping one
  // shard's gradients corrupts the model, so the failure propagates.
  EXPECT_THROW(dl.apply_updates(5e-3f, nullptr), dist::TransportError);

  dl.shutdown_workers();
  fleet.stop();
}

// ---- Global inference budget (satellite 1) ---------------------------------

TEST(DistBudget, DeriveShardConfigSplitsBudgetProportionally) {
  SampledLayer::Config global;
  global.units = 100;
  global.fan_in = 8;
  global.family = small_family();
  global.sampling.target = 40;
  global.sampling.inference_budget = 32;
  global.seed = 9;

  const std::vector<Index> offsets = shard_partition(100, 3);
  ASSERT_EQ(offsets.size(), 4u);
  EXPECT_EQ(offsets.front(), 0u);
  EXPECT_EQ(offsets.back(), 100u);

  Index budget_sum = 0, target_sum = 0;
  for (int s = 0; s < 3; ++s) {
    const Index size = offsets[s + 1] - offsets[s];
    const SampledLayer::Config sc = derive_shard_config(global, size, s);
    EXPECT_EQ(sc.units, size);
    EXPECT_GT(sc.sampling.inference_budget, 0u);
    EXPECT_GT(sc.sampling.target, 0u);
    budget_sum += sc.sampling.inference_budget;
    target_sum += sc.sampling.target;
    if (s == 0) EXPECT_EQ(sc.seed, global.seed);  // bit-identity anchor
  }
  // Ceil rounding: the sums land at the global knob, +< S slack.
  EXPECT_GE(budget_sum, 32u);
  EXPECT_LT(budget_sum, 32u + 3u);
  EXPECT_GE(target_sum, 40u);
  EXPECT_LT(target_sum, 40u + 3u);

  // budget = 0 keeps the knob off in every shard.
  global.sampling.inference_budget = 0;
  EXPECT_EQ(derive_shard_config(global, 34, 0).sampling.inference_budget, 0u);
}

TEST(DistBudget, BudgetCapsSampledCandidatesButNotExactScoring) {
  SampledLayer::Config cfg;
  cfg.units = 64;
  cfg.fan_in = 16;
  cfg.family = small_family();
  cfg.table.range_pow = 8;
  cfg.sampling.target = 48;
  cfg.seed = 7;
  SampledLayer layer(cfg, /*batch_slots=*/1, /*max_threads=*/1);
  layer.rebuild_tables(nullptr);

  Rng init(3);
  std::vector<float> prev(16);
  for (float& v : prev) v = init.uniform_float();
  VisitedSet visited(64);
  std::vector<Index> ids;
  std::vector<float> act;

  // Unbudgeted: fill_random_to_target tops the candidates up to target.
  Rng r1(11);
  layer.forward_inference({}, prev, false, r1, visited, ids, act);
  EXPECT_EQ(ids.size(), 48u);

  // Per-query override caps the candidate count.
  Rng r2(11);
  layer.forward_inference_budgeted({}, prev, false, r2, visited,
                                   /*budget_override=*/8, ids, act);
  EXPECT_LE(ids.size(), 8u);
  EXPECT_GE(ids.size(), 1u);
  EXPECT_EQ(ids.size(), act.size());

  // The configured knob behaves identically to the override.
  SampledLayer::Config capped = cfg;
  capped.sampling.inference_budget = 8;
  SampledLayer capped_layer(capped, 1, 1);
  capped_layer.rebuild_tables(nullptr);
  Rng r3(11);
  capped_layer.forward_inference({}, prev, false, r3, visited, ids, act);
  EXPECT_LE(ids.size(), 8u);

  // Exact mode ignores the budget: every unit is scored by request.
  Rng r4(11);
  capped_layer.forward_inference({}, prev, true, r4, visited, ids, act);
  EXPECT_EQ(ids.size(), 64u);
}

TEST(DistBudget, GlobalBudgetFixesShardCandidateOversampling) {
  const auto data = planted();
  // The PR-5 artifact: S shards each sampling toward their own target can
  // return far more merged candidates than the monolithic layer would.
  // With the global budget set to the target, the merged candidate count
  // lands at ~budget (+ceil slack per shard) regardless of S.
  NetworkConfig plain = net_config(data, 4);
  NetworkConfig budgeted = net_config(data, 4);
  budgeted.layers[0].sampling.inference_budget = 10;
  Network plain_net(plain, 1);
  Network budget_net(budgeted, 1);
  train(plain_net, data, 10);
  plain_net.rebuild_all(nullptr);
  train(budget_net, data, 10);
  budget_net.rebuild_all(nullptr);

  Rng probe(29);
  std::vector<float> hidden(16);
  VisitedSet visited(data.train.label_dim());
  std::vector<Index> ids;
  std::vector<float> act;
  std::size_t plain_total = 0, budget_total = 0;
  Rng ra(41), rb(41);
  for (int q = 0; q < 50; ++q) {
    for (float& v : hidden) v = probe.uniform_float();
    plain_net.stack(0).forward_inference({}, hidden, false, ra, visited, ids,
                                         act);
    plain_total += ids.size();
    budget_net.stack(0).forward_inference({}, hidden, false, rb, visited, ids,
                                          act);
    budget_total += ids.size();
    EXPECT_LE(ids.size(), 10u + 4u) << "query " << q;  // budget + S slack
  }
  EXPECT_LT(budget_total, plain_total);
}

}  // namespace
}  // namespace slide
