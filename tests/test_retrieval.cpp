// Retrieval subsystem tests: the per-backend Retriever contract (range,
// dedupe, tombstones, epoch disjointness), HNSW seeded-build bit-stability
// and save/load round-trips, checkpoint-v4 aux blocks, the batch-iterator
// page-prefix equivalence (monolithic, sharded, and through the serve
// engine), the adaptive escalation-to-exact policy, the retriever(lsh)
// bit-identity anchor, and the recall_at_k helper.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <set>
#include <sstream>
#include <vector>

#include "core/builder.h"
#include "core/serialize.h"
#include "core/trainer.h"
#include "data/synthetic.h"
#include "metrics/metrics.h"
#include "retrieval/exact_retriever.h"
#include "retrieval/hnsw_retriever.h"
#include "retrieval/lsh_retriever.h"
#include "serve/engine.h"

namespace slide {
namespace {

using retrieval::ExactRetriever;
using retrieval::HnswConfig;
using retrieval::HnswRetriever;
using retrieval::LshRetriever;
using retrieval::Retriever;
using retrieval::RetrieverKind;
using retrieval::RowView;

// ---------------------------------------------------------------------------
// Standalone backends over a shared row collection
// ---------------------------------------------------------------------------

constexpr Index kRows = 200;
constexpr Index kDim = 16;

const std::vector<float>& rows_storage() {
  static const std::vector<float> storage = [] {
    Rng rng(314);
    std::vector<float> s(static_cast<std::size_t>(kRows) * kDim);
    for (float& v : s) v = rng.normal();
    return s;
  }();
  return storage;
}

RowView rows_view() { return {rows_storage().data(), kDim, kRows}; }

std::unique_ptr<Retriever> make_backend(RetrieverKind kind,
                                        std::uint64_t seed = 99) {
  switch (kind) {
    case RetrieverKind::kLsh: {
      HashFamilyConfig family;
      family.kind = HashFamilyKind::kSimhash;
      family.k = 4;
      family.l = 8;
      family.dim = kDim;
      SamplingConfig sampling;
      sampling.strategy = SamplingStrategy::kTopK;
      return std::make_unique<LshRetriever>(
          make_hash_family(family),
          HashTable::Config{.range_pow = 8, .bucket_size = 32}, sampling,
          rows_view(), seed);
    }
    case RetrieverKind::kExact:
      return std::make_unique<ExactRetriever>(rows_view());
    case RetrieverKind::kHnsw:
      return std::make_unique<HnswRetriever>(
          rows_view(), HnswConfig{.m = 8, .ef_construction = 64,
                                  .ef_search = 32},
          seed);
  }
  return nullptr;
}

std::vector<float> query_vec(std::uint64_t seed = 5) {
  Rng rng(seed);
  std::vector<float> q(kDim);
  for (float& v : q) v = rng.normal();
  return q;
}

std::vector<Index> retrieve_ids(const Retriever& r, const float* q,
                                Index budget, VisitedSet& visited, Rng& rng,
                                bool fresh_epoch = true) {
  std::vector<Index> out;
  r.retrieve({}, std::span<const float>(q, kDim), budget, rng, visited, out,
             fresh_epoch);
  return out;
}

const RetrieverKind kAllKinds[] = {RetrieverKind::kLsh, RetrieverKind::kExact,
                                   RetrieverKind::kHnsw};

TEST(Retrieval, ContractInRangeUniqueAndStamped) {
  for (RetrieverKind kind : kAllKinds) {
    auto r = make_backend(kind);
    r->rebuild(nullptr);
    VisitedSet visited(kRows);
    Rng rng(1);
    const auto q = query_vec();
    const auto ids = retrieve_ids(*r, q.data(), 64, visited, rng);
    ASSERT_FALSE(ids.empty()) << to_string(kind);
    std::set<Index> unique(ids.begin(), ids.end());
    EXPECT_EQ(unique.size(), ids.size())
        << to_string(kind) << ": duplicate candidate ids";
    for (Index id : ids) {
      EXPECT_LT(id, kRows) << to_string(kind);
      EXPECT_TRUE(visited.contains(id))
          << to_string(kind) << ": id " << id << " not stamped on return";
    }
  }
}

TEST(Retrieval, ContractSameEpochCallsAreDisjoint) {
  for (RetrieverKind kind : kAllKinds) {
    auto r = make_backend(kind);
    r->rebuild(nullptr);
    VisitedSet visited(kRows);
    Rng rng(1);
    const auto q = query_vec();
    visited.begin_epoch();
    const auto first =
        retrieve_ids(*r, q.data(), 40, visited, rng, /*fresh_epoch=*/false);
    const auto second =
        retrieve_ids(*r, q.data(), 40, visited, rng, /*fresh_epoch=*/false);
    std::set<Index> seen(first.begin(), first.end());
    for (Index id : second) {
      EXPECT_EQ(seen.count(id), 0u)
          << to_string(kind) << ": id " << id << " returned twice in epoch";
    }
  }
}

TEST(Retrieval, ContractPreStampedIdsAreExcluded) {
  for (RetrieverKind kind : kAllKinds) {
    auto r = make_backend(kind);
    r->rebuild(nullptr);
    VisitedSet visited(kRows);
    Rng rng(1);
    const auto q = query_vec();
    // Pre-stamp a block of ids (the layer stamps forced labels this way).
    visited.begin_epoch();
    for (Index id = 0; id < 50; ++id) visited.insert(id);
    const auto ids =
        retrieve_ids(*r, q.data(), kRows, visited, rng, /*fresh_epoch=*/false);
    for (Index id : ids)
      EXPECT_GE(id, 50u) << to_string(kind) << ": pre-stamped id returned";
  }
}

TEST(Retrieval, RemoveMasksUntilReinsert) {
  for (RetrieverKind kind : kAllKinds) {
    auto r = make_backend(kind);
    r->rebuild(nullptr);
    VisitedSet visited(kRows);
    Rng rng(1);
    const auto q = query_vec();
    // Find an id the backend returns, remove it, and expect it gone.
    const auto before = retrieve_ids(*r, q.data(), kRows, visited, rng);
    ASSERT_FALSE(before.empty());
    const Index victim = before.front();
    r->remove(victim);
    const auto after = retrieve_ids(*r, q.data(), kRows, visited, rng);
    EXPECT_EQ(std::count(after.begin(), after.end(), victim), 0)
        << to_string(kind);
    // rebuild() must NOT clear the mask...
    r->rebuild(nullptr);
    const auto rebuilt = retrieve_ids(*r, q.data(), kRows, visited, rng);
    EXPECT_EQ(std::count(rebuilt.begin(), rebuilt.end(), victim), 0)
        << to_string(kind);
    // ...but insert() resurrects.
    r->insert(victim);
    if (!r->supports_delta()) r->rebuild(nullptr);
    const auto back = retrieve_ids(*r, q.data(), kRows, visited, rng);
    EXPECT_GE(std::count(back.begin(), back.end(), victim), 0)
        << to_string(kind);
    // The exact scan must literally contain it again.
    if (kind == RetrieverKind::kExact)
      EXPECT_EQ(std::count(back.begin(), back.end(), victim), 1);
  }
}

TEST(Retrieval, ExactScanReturnsWholeUniverse) {
  auto r = make_backend(RetrieverKind::kExact);
  r->rebuild(nullptr);
  VisitedSet visited(kRows);
  Rng rng(1);
  const auto q = query_vec();
  // budget is documented-ignored: the whole universe comes back.
  const auto ids = retrieve_ids(*r, q.data(), /*budget=*/3, visited, rng);
  EXPECT_EQ(ids.size(), static_cast<std::size_t>(kRows));
}

TEST(Retrieval, KindStringsRoundTrip) {
  for (RetrieverKind kind : kAllKinds)
    EXPECT_EQ(retrieval::parse_retriever_kind(to_string(kind)), kind);
  EXPECT_THROW(retrieval::parse_retriever_kind("bogus"), Error);
}

// ---------------------------------------------------------------------------
// HNSW determinism + serialization
// ---------------------------------------------------------------------------

std::string hnsw_state(const HnswRetriever& r) {
  std::ostringstream out(std::ios::binary);
  r.save_state(out);
  return out.str();
}

TEST(Retrieval, HnswSeededBuildIsBitStable) {
  auto a = make_backend(RetrieverKind::kHnsw, 7);
  auto b = make_backend(RetrieverKind::kHnsw, 7);
  a->rebuild(nullptr);
  b->rebuild(nullptr);
  EXPECT_EQ(hnsw_state(static_cast<const HnswRetriever&>(*a)),
            hnsw_state(static_cast<const HnswRetriever&>(*b)));
  // Rebuilding in place reproduces the same graph bit for bit.
  a->rebuild(nullptr);
  EXPECT_EQ(hnsw_state(static_cast<const HnswRetriever&>(*a)),
            hnsw_state(static_cast<const HnswRetriever&>(*b)));
}

TEST(Retrieval, HnswSaveLoadRoundTrip) {
  auto built = make_backend(RetrieverKind::kHnsw, 7);
  built->rebuild(nullptr);
  const std::string bytes =
      hnsw_state(static_cast<const HnswRetriever&>(*built));

  auto loaded = make_backend(RetrieverKind::kHnsw, 7);
  std::istringstream in(bytes, std::ios::binary);
  ASSERT_TRUE(loaded->load_state(in));  // usable WITHOUT a rebuild
  EXPECT_EQ(hnsw_state(static_cast<const HnswRetriever&>(*loaded)), bytes);

  VisitedSet va(kRows), vb(kRows);
  Rng ra(1), rb(1);
  for (std::uint64_t s = 0; s < 5; ++s) {
    const auto q = query_vec(s);
    EXPECT_EQ(retrieve_ids(*built, q.data(), 32, va, ra),
              retrieve_ids(*loaded, q.data(), 32, vb, rb));
  }
}

TEST(Retrieval, HnswFindsPlantedNeighbor) {
  // A query equal to a stored row must retrieve that row first.
  auto r = make_backend(RetrieverKind::kHnsw);
  r->rebuild(nullptr);
  VisitedSet visited(kRows);
  Rng rng(1);
  for (Index id : {Index{3}, Index{77}, Index{199}}) {
    const float* q = rows_view().row(id);
    const auto ids = retrieve_ids(*r, q, 16, visited, rng);
    ASSERT_FALSE(ids.empty());
    EXPECT_EQ(ids.front(), id);
  }
}

// ---------------------------------------------------------------------------
// Network-level fixtures
// ---------------------------------------------------------------------------

SyntheticDataset tiny_data(std::uint64_t seed = 911) {
  SyntheticConfig cfg;
  cfg.feature_dim = 64;
  cfg.label_dim = 48;
  cfg.num_train = 200;
  cfg.num_test = 50;
  cfg.features_per_label = 8;
  cfg.active_per_label = 5;
  cfg.seed = seed;
  return make_synthetic_xc(cfg);
}

HashFamilyConfig small_family() {
  HashFamilyConfig family;
  family.kind = HashFamilyKind::kSimhash;
  family.k = 4;
  family.l = 10;
  return family;
}

NetworkConfig net_config(const SyntheticDataset& data,
                         RetrieverKind kind = RetrieverKind::kLsh,
                         Index escalation_floor = 0, int shards = 0) {
  NetworkBuilder b(data.train.feature_dim());
  b.dense(16).sampled(data.train.label_dim(), small_family(), 16);
  b.table({.range_pow = 8, .bucket_size = 32});
  b.retriever(kind);
  if (kind == RetrieverKind::kHnsw)
    b.hnsw({.m = 6, .ef_construction = 32, .ef_search = 24});
  if (escalation_floor > 0) {
    SamplingConfig sampling;
    sampling.strategy = SamplingStrategy::kTopK;
    sampling.target = 16;
    sampling.escalation_floor = escalation_floor;
    b.sampling_config(sampling);
    b.fill_random_to_target(false);
  }
  if (shards > 0) b.shards(shards);
  b.max_batch(32).seed(123);
  return b.to_config();
}

void train(Network& net, const SyntheticDataset& data, long iterations,
           int threads = 2) {
  TrainerConfig tcfg;
  tcfg.batch_size = 16;
  tcfg.num_threads = threads;
  tcfg.learning_rate = 1e-2f;
  Trainer trainer(net, tcfg);
  trainer.train(data.train, iterations);
}

// ---------------------------------------------------------------------------
// Builder + layer integration
// ---------------------------------------------------------------------------

TEST(Retrieval, BuilderRejectsNonLshRetrieverOnUnhashedLayer) {
  NetworkBuilder b(8);
  b.dense(4).dense(8, Activation::kSoftmax);
  EXPECT_THROW(b.retriever(RetrieverKind::kHnsw), Error);
  EXPECT_THROW(b.hnsw({.m = 1}), Error);  // m < 2
}

TEST(Retrieval, NetworkTrainsAndPredictsWithEachBackend) {
  const auto data = tiny_data();
  for (RetrieverKind kind : kAllKinds) {
    Network net(net_config(data, kind), 2);
    EXPECT_EQ(net.output_layer().retriever_kind(), kind);
    train(net, data, 30);
    InferenceContext ctx(net, 7);
    int nonempty = 0;
    for (std::size_t i = 0; i < 10; ++i) {
      const auto top = net.predict_topk(data.test[i].features, ctx, 5);
      for (Index label : top) EXPECT_LT(label, data.test.label_dim());
      nonempty += top.empty() ? 0 : 1;
    }
    EXPECT_GT(nonempty, 0) << to_string(kind);
  }
}

TEST(Retrieval, LshRetrieverConfigIsBitIdenticalToDefault) {
  // retriever(lsh) is the refactored path behind the historical behavior:
  // training from the same seed must produce bit-identical weights and
  // predictions vs a config that never mentions the retriever knob.
  const auto data = tiny_data();
  // `explicit_cfg` goes through the .retriever(lsh) knob; `default_cfg`
  // never mentions the retriever at all.
  NetworkConfig explicit_cfg = net_config(data, RetrieverKind::kLsh);
  NetworkBuilder b_default(data.train.feature_dim());
  b_default.dense(16).sampled(data.train.label_dim(), small_family(), 16);
  b_default.table({.range_pow = 8, .bucket_size = 32});
  b_default.max_batch(32).seed(123);
  NetworkConfig default_cfg = b_default.to_config();

  // Single-threaded training: gradient application order is then
  // deterministic, so any weight difference is a retriever-path difference.
  Network a(explicit_cfg, 1), b(default_cfg, 1);
  train(a, data, 40, /*threads=*/1);
  train(b, data, 40, /*threads=*/1);
  for (int s = 0; s < a.output_layer().num_shards(); ++s) {
    const auto wa = a.output_layer().shard_weights(s);
    const auto wb = b.output_layer().shard_weights(s);
    ASSERT_EQ(wa.size(), wb.size());
    EXPECT_EQ(std::memcmp(wa.data(), wb.data(), wa.size() * sizeof(float)),
              0);
  }
  InferenceContext ca(a, 7), cb(b, 7);
  for (std::size_t i = 0; i < data.test.size(); ++i) {
    EXPECT_EQ(a.predict_topk(data.test[i].features, ca, 5),
              b.predict_topk(data.test[i].features, cb, 5));
  }
}

// ---------------------------------------------------------------------------
// Checkpoint v4
// ---------------------------------------------------------------------------

TEST(Retrieval, CheckpointV4RoundTripPerBackend) {
  const auto data = tiny_data();
  for (RetrieverKind kind : kAllKinds) {
    Network src(net_config(data, kind), 2);
    train(src, data, 30);
    // Re-index from the final weights: src's index otherwise reflects its
    // mid-training rebuild history, which a loader (that rebuilds from the
    // final weights) cannot reproduce.
    src.rebuild_all(nullptr);
    std::stringstream buffer(std::ios::in | std::ios::out | std::ios::binary);
    save_weights(src, buffer);

    Network dst(net_config(data, kind), 2);
    load_weights(dst, buffer);
    // Exact scoring depends only on the weights: must match bit for bit.
    InferenceContext cs(src, 7), cd(dst, 7);
    for (std::size_t i = 0; i < 10; ++i) {
      EXPECT_EQ(src.predict_topk(data.test[i].features, cs, 5, true),
                dst.predict_topk(data.test[i].features, cd, 5, true))
          << to_string(kind);
    }
    // Sampled scoring exercises the restored (or rebuilt) index.
    InferenceContext cs2(src, 9), cd2(dst, 9);
    for (std::size_t i = 0; i < 10; ++i) {
      EXPECT_EQ(src.predict_topk(data.test[i].features, cs2, 5),
                dst.predict_topk(data.test[i].features, cd2, 5))
          << to_string(kind);
    }
  }
}

TEST(Retrieval, CheckpointHnswGraphSurvivesWithoutRebuild) {
  // The v4 aux block must restore the HNSW graph byte-identically — not
  // merely an equivalent rebuild.
  const auto data = tiny_data();
  Network src(net_config(data, RetrieverKind::kHnsw), 2);
  train(src, data, 30);
  std::stringstream buffer(std::ios::in | std::ios::out | std::ios::binary);
  save_weights(src, buffer);

  Network dst(net_config(data, RetrieverKind::kHnsw), 2);
  load_weights(dst, buffer);
  const auto* src_layer =
      dynamic_cast<const SampledLayer*>(&src.output_layer());
  const auto* dst_layer =
      dynamic_cast<const SampledLayer*>(&dst.output_layer());
  ASSERT_NE(src_layer, nullptr);
  ASSERT_NE(dst_layer, nullptr);
  std::ostringstream sa(std::ios::binary), sb(std::ios::binary);
  src_layer->save_retriever_state(sa);
  dst_layer->save_retriever_state(sb);
  EXPECT_FALSE(sa.str().empty());
  EXPECT_EQ(sa.str(), sb.str());
}

TEST(Retrieval, CheckpointCrossRetrieverKindSkipsAuxBlock) {
  // A checkpoint written by an HNSW-configured network loads into an
  // LSH-configured one (and vice versa): the weights transfer, the
  // mismatched aux block is skipped, and the target rebuilds its own index.
  const auto data = tiny_data();
  Network hnsw_net(net_config(data, RetrieverKind::kHnsw), 2);
  train(hnsw_net, data, 30);
  std::stringstream buffer(std::ios::in | std::ios::out | std::ios::binary);
  save_weights(hnsw_net, buffer);

  Network lsh_net(net_config(data, RetrieverKind::kLsh), 2);
  load_weights(lsh_net, buffer);
  InferenceContext ch(hnsw_net, 7), cl(lsh_net, 7);
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(hnsw_net.predict_topk(data.test[i].features, ch, 5, true),
              lsh_net.predict_topk(data.test[i].features, cl, 5, true));
  }

  buffer.clear();
  buffer.seekg(0);
  Network lsh2(net_config(data, RetrieverKind::kLsh), 2);
  load_weights(lsh2, buffer);  // idempotent reload
  InferenceContext c2(lsh2, 7);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(hnsw_net.predict_topk(data.test[i].features, ch, 5, true),
              lsh2.predict_topk(data.test[i].features, c2, 5, true));
  }
}

// ---------------------------------------------------------------------------
// Batch iterator / pagination
// ---------------------------------------------------------------------------

void expect_pages_equal_oneshot(const Network& net, const Dataset& test,
                                bool exact) {
  // Equal-seeded contexts: the sampled path consumes RNG during the
  // forward pass, so the one-shot and paged runs must start from the same
  // stream to see the same candidate set.
  InferenceContext one_ctx(net, 42);
  InferenceContext page_ctx(net, 42);
  for (std::size_t i = 0; i < 10; ++i) {
    const auto oneshot =
        net.predict_topk(test[i].features, one_ctx, 20, exact);
    TopKIterator it = net.topk_iterator(test[i].features, page_ctx, exact);
    EXPECT_EQ(it.position(), 0u);
    std::vector<Index> paged, page;
    while (it.next(5, page)) {
      EXPECT_LE(page.size(), 5u);
      paged.insert(paged.end(), page.begin(), page.end());
      EXPECT_EQ(it.position(), paged.size());
    }
    EXPECT_EQ(it.total(), paged.size());
    // No duplicates across pages.
    std::set<Index> unique(paged.begin(), paged.end());
    EXPECT_EQ(unique.size(), paged.size());
    // Concatenated pages = the one-shot ranking, element for element.
    ASSERT_GE(paged.size(), oneshot.size());
    for (std::size_t k = 0; k < oneshot.size(); ++k)
      EXPECT_EQ(paged[k], oneshot[k]) << "sample " << i << " rank " << k;
  }
}

TEST(Retrieval, TopKIteratorPagePrefixEquivalence) {
  const auto data = tiny_data();
  Network net(net_config(data), 2);
  train(net, data, 30);
  expect_pages_equal_oneshot(net, data.test, /*exact=*/true);
  expect_pages_equal_oneshot(net, data.test, /*exact=*/false);
}

TEST(Retrieval, TopKIteratorPagePrefixEquivalenceSharded) {
  const auto data = tiny_data();
  Network net(net_config(data, RetrieverKind::kLsh, 0, /*shards=*/3), 2);
  train(net, data, 30);
  expect_pages_equal_oneshot(net, data.test, /*exact=*/true);
  expect_pages_equal_oneshot(net, data.test, /*exact=*/false);
}

TEST(Retrieval, PredictTopkPageOffsets) {
  const auto data = tiny_data();
  Network net(net_config(data), 2);
  train(net, data, 30);
  InferenceContext ctx(net, 42);
  const auto full = net.predict_topk(data.test[0].features, ctx, 15, true);
  ASSERT_GE(full.size(), 10u);
  std::vector<Index> page;
  InferenceContext pctx(net, 42);
  net.predict_topk_page(data.test[0].features, pctx, 5, 5, true, page);
  ASSERT_EQ(page.size(), 5u);
  for (std::size_t k = 0; k < 5; ++k) EXPECT_EQ(page[k], full[5 + k]);
  // A page entirely past the end is empty.
  net.predict_topk_page(data.test[0].features, pctx, 5,
                        static_cast<int>(net.output_dim()), true, page);
  EXPECT_TRUE(page.empty());
  EXPECT_THROW(
      net.predict_topk_page(data.test[0].features, pctx, 0, 0, true, page),
      Error);
  EXPECT_THROW(
      net.predict_topk_page(data.test[0].features, pctx, 5, -1, true, page),
      Error);
}

TEST(Retrieval, ServePaginationMatchesOneShot) {
  const auto data = tiny_data();
  auto network = std::make_shared<Network>(net_config(data), 2);
  train(*network, data, 30);
  auto store = std::make_shared<ModelStore>(network);
  ServeConfig cfg;
  cfg.num_workers = 2;
  cfg.exact = true;  // deterministic across workers
  InferenceEngine engine(store, cfg);

  InferenceContext ctx(*network, 42);
  for (std::size_t i = 0; i < 5; ++i) {
    const auto full =
        network->predict_topk(data.test[i].features, ctx, 10, true);
    auto first = engine.submit(data.test[i].features, {.top_k = 5});
    auto second = engine.submit(data.test[i].features,
                                {.top_k = 5, .page_offset = 5});
    ASSERT_TRUE(first.has_value() && second.has_value());
    const Prediction head = first->get();
    const Prediction tail = second->get();
    std::vector<Index> stitched = head.labels;
    stitched.insert(stitched.end(), tail.labels.begin(), tail.labels.end());
    ASSERT_EQ(stitched.size(), full.size());
    EXPECT_EQ(stitched, full);
  }
  EXPECT_THROW(engine.submit(data.test[0].features,
                             {.top_k = 5, .page_offset = -1}),
               Error);
  engine.stop();
}

// ---------------------------------------------------------------------------
// Adaptive escalation policy
// ---------------------------------------------------------------------------

TEST(Retrieval, EscalationFloorTriggersExactScan) {
  const auto data = tiny_data();
  // Floor above anything the sampler can deliver: every inference query
  // escalates, so sampled predictions must equal exact ones.
  const Index floor = data.train.label_dim();
  Network net(net_config(data, RetrieverKind::kLsh, floor), 2);
  train(net, data, 30);

  const RetrievalStats before = net.output_layer().retrieval_stats();
  EXPECT_TRUE(before.adaptive);

  InferenceContext sampled_ctx(net, 7), exact_ctx(net, 7);
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(net.predict_topk(data.test[i].features, sampled_ctx, 5),
              net.predict_topk(data.test[i].features, exact_ctx, 5, true));
  }
  const RetrievalStats after = net.output_layer().retrieval_stats();
  EXPECT_GE(after.escalations - before.escalations, 10);
  EXPECT_GT(after.oracle, before.oracle);
  EXPECT_GE(after.recall(), 0.0);
  EXPECT_LE(after.recall(), 1.0);
}

TEST(Retrieval, EscalationOffByDefault) {
  const auto data = tiny_data();
  Network net(net_config(data), 2);
  train(net, data, 30);
  InferenceContext ctx(net, 7);
  for (std::size_t i = 0; i < 10; ++i)
    net.predict_topk(data.test[i].features, ctx, 5);
  const RetrievalStats s = net.output_layer().retrieval_stats();
  EXPECT_FALSE(s.adaptive);
  EXPECT_EQ(s.escalations, 0);
}

TEST(Retrieval, EscalationStatsSurfaceInServeStats) {
  const auto data = tiny_data();
  const Index floor = data.train.label_dim();
  auto network =
      std::make_shared<Network>(net_config(data, RetrieverKind::kLsh, floor),
                                2);
  train(*network, data, 30);
  auto store = std::make_shared<ModelStore>(network);
  ServeConfig cfg;
  cfg.num_workers = 1;
  InferenceEngine engine(store, cfg);
  std::vector<std::future<Prediction>> futures;
  for (std::size_t i = 0; i < 10; ++i) {
    auto f = engine.submit(data.test[i].features, {.top_k = 5});
    ASSERT_TRUE(f.has_value());
    futures.push_back(std::move(*f));
  }
  for (auto& f : futures) f.get();
  const ServeStats stats = engine.stats();
  EXPECT_TRUE(stats.adaptive_retrieval);
  EXPECT_GE(stats.retrieval_escalations, 10u);
  EXPECT_GE(stats.retrieval_recall, 0.0);
  EXPECT_LE(stats.retrieval_recall, 1.0);
  std::ostringstream table;
  engine.print_stats(table);
  EXPECT_NE(table.str().find("retrieval escalations"), std::string::npos);
  engine.stop();
}

// ---------------------------------------------------------------------------
// recall_at_k
// ---------------------------------------------------------------------------

TEST(Retrieval, RecallAtK) {
  const std::vector<Index> oracle = {1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(recall_at_k(std::vector<Index>{1, 2, 3, 4}, oracle), 1.0);
  EXPECT_DOUBLE_EQ(recall_at_k(std::vector<Index>{1, 2}, oracle), 0.5);
  EXPECT_DOUBLE_EQ(recall_at_k(std::vector<Index>{9, 8}, oracle), 0.0);
  EXPECT_DOUBLE_EQ(recall_at_k(std::vector<Index>{}, oracle), 0.0);
  // Duplicates count once, on either side.
  EXPECT_DOUBLE_EQ(recall_at_k(std::vector<Index>{1, 1, 1}, oracle), 0.25);
  EXPECT_DOUBLE_EQ(
      recall_at_k(std::vector<Index>{1, 2}, std::vector<Index>{1, 1, 2}),
      1.0);
  // Empty oracle: nothing to recall.
  EXPECT_DOUBLE_EQ(recall_at_k(std::vector<Index>{1}, std::vector<Index>{}),
                   1.0);
}

}  // namespace
}  // namespace slide
