// Layer-level tests: forward correctness against manual computation,
// numerical gradient checks through the full embedding->softmax stack,
// active-set construction (forced labels, random fill), touched-unit
// tracking, and the lazy-update contract.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "core/layer.h"
#include "simd/kernels.h"

namespace slide {
namespace {

SparseVector make_input() {
  return SparseVector({0, 2, 5}, {0.5f, -1.0f, 0.25f});
}

EmbeddingLayer make_embedding(Index input_dim = 6, Index units = 4) {
  return EmbeddingLayer(input_dim, units, /*init_stddev=*/0.4f,
                        /*batch_slots=*/4, /*max_threads=*/2, AdamConfig{},
                        /*seed=*/101);
}

SampledLayer::Config dense_softmax_config(Index units, Index fan_in) {
  SampledLayer::Config cfg;
  cfg.units = units;
  cfg.fan_in = fan_in;
  cfg.activation = Activation::kSoftmax;
  cfg.hashed = false;
  cfg.seed = 55;
  return cfg;
}

// ---------------------------------------------------------------------------
// EmbeddingLayer
// ---------------------------------------------------------------------------

TEST(EmbeddingLayer, ForwardMatchesManualComputation) {
  auto layer = make_embedding();
  const SparseVector x = make_input();
  layer.forward(0, x);
  const auto& s = layer.slot(0);
  for (Index j = 0; j < layer.units(); ++j) {
    float expected = layer.bias(j);
    for (std::size_t i = 0; i < x.nnz(); ++i)
      expected += x.values()[i] * layer.weight_column(x.indices()[i])[j];
    expected = std::max(expected, 0.0f);
    EXPECT_NEAR(s.act[j], expected, 1e-5f) << j;
    EXPECT_EQ(s.err[j], 0.0f);
  }
}

TEST(EmbeddingLayer, ForwardInferenceMatchesSlotForward) {
  auto layer = make_embedding();
  const SparseVector x = make_input();
  layer.forward(1, x);
  std::vector<float> out(layer.units());
  layer.forward_inference(x, out.data());
  for (Index j = 0; j < layer.units(); ++j)
    EXPECT_EQ(out[j], layer.slot(1).act[j]);
}

TEST(EmbeddingLayer, BackwardAccumulatesGradOnlyAtInputSupport) {
  auto layer = make_embedding();
  const SparseVector x = make_input();
  layer.forward(0, x);
  auto& s = layer.slot(0);
  for (Index j = 0; j < layer.units(); ++j) s.err[j] = 1.0f;
  layer.backward(0, x, /*tid=*/0);
  const std::set<Index> support(x.indices().begin(), x.indices().end());
  for (Index c = 0; c < layer.input_dim(); ++c) {
    const float* g = layer.gradient_column(c);
    float norm = 0.0f;
    for (Index j = 0; j < layer.units(); ++j) norm += std::fabs(g[j]);
    if (support.count(c)) {
      EXPECT_GT(norm, 0.0f) << c;
    } else {
      EXPECT_EQ(norm, 0.0f) << c;
    }
  }
}

TEST(EmbeddingLayer, ReluGateZeroesDeadDeltas) {
  auto layer = make_embedding();
  const SparseVector x = make_input();
  layer.forward(0, x);
  auto& s = layer.slot(0);
  // Find a dead unit (act == 0) if any; force one by biasing err.
  for (Index j = 0; j < layer.units(); ++j) s.err[j] = 2.0f;
  layer.backward(0, x, 0);
  for (Index j = 0; j < layer.units(); ++j) {
    if (s.act[j] <= 0.0f) {
      EXPECT_EQ(s.err[j], 0.0f);
    }
  }
}

TEST(EmbeddingLayer, ApplyClearsGradientsAndMovesWeights) {
  auto layer = make_embedding();
  const SparseVector x = make_input();
  layer.forward(0, x);
  auto& s = layer.slot(0);
  for (Index j = 0; j < layer.units(); ++j) s.err[j] = 1.0f;
  layer.backward(0, x, 0);
  const float w_before = layer.weight_column(0)[0];
  const bool had_grad = std::fabs(layer.gradient_column(0)[0]) > 0.0f;
  layer.apply_updates(0.01f, nullptr);
  if (had_grad) {
    EXPECT_NE(layer.weight_column(0)[0], w_before);
  }
  for (Index j = 0; j < layer.units(); ++j)
    EXPECT_EQ(layer.gradient_column(0)[j], 0.0f);
  // Untouched column must not move.
  EXPECT_EQ(layer.gradient_column(1)[0], 0.0f);
}

// ---------------------------------------------------------------------------
// SampledLayer — dense mode correctness
// ---------------------------------------------------------------------------

TEST(SampledLayer, DenseForwardMatchesManualSoftmax) {
  const Index units = 5, fan_in = 4;
  SampledLayer layer(dense_softmax_config(units, fan_in), 2, 2);
  ActiveSet prev;
  prev.dense_width = fan_in;
  prev.act = {0.3f, -0.1f, 0.7f, 0.2f};
  prev.err.assign(fan_in, 0.0f);
  Rng rng(1);
  VisitedSet visited(units);
  layer.forward(0, prev, {}, rng, visited, 0);

  std::vector<float> expected(units);
  for (Index u = 0; u < units; ++u) {
    expected[u] = layer.bias(u) +
                  simd::scalar::dot(layer.weight_row(u), prev.act.data(),
                                    fan_in);
  }
  const auto& s = layer.slot(0);
  ASSERT_TRUE(s.dense());
  for (Index u = 0; u < units; ++u) EXPECT_NEAR(s.act[u], expected[u], 1e-5f);

  const std::vector<Index> labels = {2};
  layer.compute_softmax_ce_deltas(0, labels, 1.0f);
  simd::scalar::softmax_inplace(expected.data(), units);
  float delta_sum = 0.0f;
  for (Index u = 0; u < units; ++u) {
    const float y = u == 2 ? 1.0f : 0.0f;
    EXPECT_NEAR(s.err[u], expected[u] - y, 1e-5f);
    delta_sum += s.err[u];
  }
  EXPECT_NEAR(delta_sum, 0.0f, 1e-5f);  // softmax-CE deltas sum to zero
}

TEST(SampledLayer, SoftmaxLossIsCrossEntropy) {
  const Index units = 3, fan_in = 2;
  SampledLayer layer(dense_softmax_config(units, fan_in), 1, 1);
  ActiveSet prev;
  prev.dense_width = fan_in;
  prev.act = {1.0f, -0.5f};
  prev.err.assign(fan_in, 0.0f);
  Rng rng(2);
  VisitedSet visited(units);
  layer.forward(0, prev, {}, rng, visited, 0);
  std::vector<float> logits(units);
  for (Index u = 0; u < units; ++u)
    logits[u] = layer.bias(u) +
                simd::scalar::dot(layer.weight_row(u), prev.act.data(),
                                  fan_in);
  simd::scalar::softmax_inplace(logits.data(), units);
  const float loss =
      layer.compute_softmax_ce_deltas(0, std::vector<Index>{1}, 1.0f);
  EXPECT_NEAR(loss, -std::log(logits[1]), 1e-5f);
}

// ---------------------------------------------------------------------------
// Full-stack numerical gradient check (dense mode, inv_batch = 1).
// ---------------------------------------------------------------------------

struct TinyNet {
  TinyNet()
      : embedding(6, 4, 0.6f, 1, 1, AdamConfig{}, 77),
        output(dense_softmax_config(5, 4), 1, 1) {}

  float loss(const SparseVector& x, const std::vector<Index>& labels) {
    embedding.forward(0, x);
    ActiveSet& h = embedding.slot(0);
    Rng rng(3);
    VisitedSet visited(8);
    output.forward(0, h, labels, rng, visited, 0);
    return output.compute_softmax_ce_deltas(0, labels, 1.0f);
  }

  void backward(const SparseVector& x) {
    output.backward(0, embedding.slot(0), 0);
    embedding.backward(0, x, 0);
  }

  EmbeddingLayer embedding;
  SampledLayer output;
};

TEST(GradientCheck, OutputLayerWeightsMatchFiniteDifferences) {
  TinyNet net;
  const SparseVector x = make_input();
  const std::vector<Index> labels = {3};
  net.loss(x, labels);
  net.backward(x);

  const float h = 1e-3f;
  for (Index u = 0; u < 5; ++u) {
    for (Index d = 0; d < 4; ++d) {
      float& w = net.output.weight_row(u)[d];
      const float analytic = net.output.gradient_row(u)[d];
      const float save = w;
      w = save + h;
      const float lp = net.loss(x, labels);
      w = save - h;
      const float lm = net.loss(x, labels);
      w = save;
      const float numeric = (lp - lm) / (2 * h);
      EXPECT_NEAR(analytic, numeric, 5e-3f) << "u=" << u << " d=" << d;
    }
  }
}

TEST(GradientCheck, EmbeddingWeightsMatchFiniteDifferences) {
  TinyNet net;
  const SparseVector x = make_input();
  const std::vector<Index> labels = {1};
  net.loss(x, labels);
  net.backward(x);

  const float h = 1e-3f;
  for (Index c : {Index{0}, Index{2}, Index{5}}) {  // input support
    for (Index j = 0; j < 4; ++j) {
      float& w = net.embedding.weight_column(c)[j];
      const float analytic = net.embedding.gradient_column(c)[j];
      const float save = w;
      w = save + h;
      const float lp = net.loss(x, labels);
      w = save - h;
      const float lm = net.loss(x, labels);
      w = save;
      const float numeric = (lp - lm) / (2 * h);
      EXPECT_NEAR(analytic, numeric, 5e-3f) << "c=" << c << " j=" << j;
    }
  }
}

TEST(GradientCheck, BiasGradientsMatchFiniteDifferences) {
  TinyNet net;
  const SparseVector x = make_input();
  const std::vector<Index> labels = {0};
  net.loss(x, labels);
  net.backward(x);
  // Output bias u: analytic = delta_u, but verify through the recorded
  // bias gradient accessor.
  const float h = 1e-3f;
  for (Index u = 0; u < 5; ++u) {
    const float analytic = net.output.bias_gradient(u);
    // Perturb via weight trick: temporarily shift bias through weights is
    // not possible, so check against softmax deltas directly.
    const float delta = net.output.slot(0).err[u];
    EXPECT_NEAR(analytic, delta, 1e-6f);
  }
  (void)h;
}

// ---------------------------------------------------------------------------
// SampledLayer — hashed active-set construction
// ---------------------------------------------------------------------------

SampledLayer::Config hashed_config(Index units, Index fan_in, Index target) {
  SampledLayer::Config cfg;
  cfg.units = units;
  cfg.fan_in = fan_in;
  cfg.activation = Activation::kSoftmax;
  cfg.hashed = true;
  cfg.family.kind = HashFamilyKind::kSimhash;
  cfg.family.k = 5;
  cfg.family.l = 10;
  cfg.table.range_pow = 8;
  cfg.table.bucket_size = 32;
  cfg.sampling.strategy = SamplingStrategy::kVanilla;
  cfg.sampling.target = target;
  cfg.seed = 99;
  return cfg;
}

TEST(SampledLayer, ForcedLabelsComeFirstAndAreUnique) {
  SampledLayer layer(hashed_config(100, 8, 20), 2, 2);
  ActiveSet prev;
  prev.dense_width = 8;
  prev.act = {0.1f, 0.2f, 0.3f, 0.4f, -0.1f, -0.2f, 0.5f, 0.6f};
  prev.err.assign(8, 0.0f);
  Rng rng(4);
  VisitedSet visited(100);
  const std::vector<Index> labels = {42, 7, 42};  // duplicate on purpose
  layer.forward(0, prev, labels, rng, visited, 0);
  const auto& ids = layer.slot(0).ids;
  ASSERT_GE(ids.size(), 2u);
  EXPECT_EQ(ids[0], 42u);
  EXPECT_EQ(ids[1], 7u);
  std::set<Index> unique(ids.begin(), ids.end());
  EXPECT_EQ(unique.size(), ids.size());
}

TEST(SampledLayer, RandomFillReachesTarget) {
  SampledLayer layer(hashed_config(500, 8, 64), 1, 1);
  ActiveSet prev;
  prev.dense_width = 8;
  prev.act.assign(8, 0.25f);
  prev.err.assign(8, 0.0f);
  Rng rng(5);
  VisitedSet visited(500);
  layer.forward(0, prev, {}, rng, visited, 0);
  EXPECT_EQ(layer.slot(0).ids.size(), 64u);
}

TEST(SampledLayer, TargetAboveUnitsActivatesEverything) {
  SampledLayer layer(hashed_config(30, 8, 1'000), 1, 1);
  ActiveSet prev;
  prev.dense_width = 8;
  prev.act.assign(8, 0.1f);
  prev.err.assign(8, 0.0f);
  Rng rng(6);
  VisitedSet visited(30);
  layer.forward(0, prev, std::vector<Index>{3}, rng, visited, 0);
  EXPECT_EQ(layer.slot(0).ids.size(), 30u);
  EXPECT_EQ(layer.slot(0).ids[0], 3u);
}

TEST(SampledLayer, BackwardTouchesOnlyActiveNeurons) {
  SampledLayer layer(hashed_config(200, 8, 16), 1, 1);
  ActiveSet prev;
  prev.dense_width = 8;
  prev.act.assign(8, 0.3f);
  prev.err.assign(8, 0.0f);
  Rng rng(7);
  VisitedSet visited(200);
  const std::vector<Index> labels = {11};
  layer.forward(0, prev, labels, rng, visited, 0);
  layer.compute_softmax_ce_deltas(0, labels, 1.0f);
  layer.backward(0, prev, 0);

  const std::set<Index> active(layer.slot(0).ids.begin(),
                               layer.slot(0).ids.end());
  for (Index u = 0; u < 200; ++u) {
    float norm = 0.0f;
    for (Index d = 0; d < 8; ++d) norm += std::fabs(layer.gradient_row(u)[d]);
    if (active.count(u)) {
      EXPECT_GT(norm, 0.0f) << u;
    } else {
      EXPECT_EQ(norm, 0.0f) << u;
    }
  }
}

TEST(SampledLayer, ApplyMovesOnlyTouchedWeightsAndClears) {
  SampledLayer layer(hashed_config(200, 8, 16), 1, 1);
  ActiveSet prev;
  prev.dense_width = 8;
  prev.act.assign(8, 0.3f);
  prev.err.assign(8, 0.0f);
  Rng rng(8);
  VisitedSet visited(200);
  const std::vector<Index> labels = {5};
  layer.forward(0, prev, labels, rng, visited, 0);
  layer.compute_softmax_ce_deltas(0, labels, 1.0f);
  layer.backward(0, prev, 0);

  const std::set<Index> active(layer.slot(0).ids.begin(),
                               layer.slot(0).ids.end());
  Index untouched = 0;
  while (active.count(untouched)) ++untouched;
  std::vector<float> untouched_row(
      layer.weight_row(untouched), layer.weight_row(untouched) + 8);
  const float touched_before = layer.weight_row(labels[0])[0];

  layer.apply_updates(0.05f, nullptr);
  EXPECT_NE(layer.weight_row(labels[0])[0], touched_before);
  for (Index d = 0; d < 8; ++d)
    EXPECT_EQ(layer.weight_row(untouched)[d], untouched_row[d]);
  for (Index d = 0; d < 8; ++d)
    EXPECT_EQ(layer.gradient_row(labels[0])[d], 0.0f);
}

TEST(SampledLayer, PropagatesErrorToDensePrev) {
  SampledLayer layer(dense_softmax_config(6, 4), 1, 1);
  ActiveSet prev;
  prev.dense_width = 4;
  prev.act = {0.5f, 0.1f, -0.3f, 0.8f};
  prev.err.assign(4, 0.0f);
  Rng rng(9);
  VisitedSet visited(6);
  layer.forward(0, prev, {}, rng, visited, 0);
  layer.compute_softmax_ce_deltas(0, std::vector<Index>{2}, 1.0f);
  layer.backward(0, prev, 0);
  // prev.err must equal W^T delta.
  const auto& s = layer.slot(0);
  for (Index d = 0; d < 4; ++d) {
    float expected = 0.0f;
    for (Index u = 0; u < 6; ++u) expected += s.err[u] * layer.weight_row(u)[d];
    EXPECT_NEAR(prev.err[d], expected, 1e-5f);
  }
}

TEST(SampledLayer, ActiveFractionDiagnostics) {
  SampledLayer layer(hashed_config(1'000, 8, 50), 1, 1);
  ActiveSet prev;
  prev.dense_width = 8;
  prev.act.assign(8, 0.2f);
  prev.err.assign(8, 0.0f);
  Rng rng(10);
  VisitedSet visited(1'000);
  for (int i = 0; i < 10; ++i) layer.forward(0, prev, {}, rng, visited, 0);
  EXPECT_NEAR(layer.average_active_fraction(), 0.05, 0.01);
  layer.reset_active_stats();
  EXPECT_EQ(layer.average_active_fraction(), 0.0);
}

TEST(SampledLayer, RebuildScheduleFollowsExponentialDecay) {
  auto cfg = hashed_config(50, 8, 10);
  cfg.rebuild.initial_period = 10;
  cfg.rebuild.decay = 0.5;
  SampledLayer layer(cfg, 1, 1);
  EXPECT_FALSE(layer.maybe_rebuild(5, nullptr));
  EXPECT_TRUE(layer.maybe_rebuild(10, nullptr));
  EXPECT_EQ(layer.rebuild_count(), 1);
  // Next gap = 10 * e^0.5 ~ 16.5 -> next rebuild at ~26..27.
  EXPECT_FALSE(layer.maybe_rebuild(20, nullptr));
  EXPECT_TRUE(layer.maybe_rebuild(27, nullptr));
  EXPECT_EQ(layer.rebuild_count(), 2);
}

TEST(SampledLayer, RejectsConflictingModes) {
  SampledLayer::Config cfg = dense_softmax_config(4, 4);
  cfg.hashed = true;
  cfg.random_sampled = true;
  cfg.family.dim = 4;
  EXPECT_THROW(SampledLayer(cfg, 1, 1), Error);
}

}  // namespace
}  // namespace slide
