// Asynchronous LSH maintenance tests: the BackgroundWorker executor, the
// MaintainedTables double-buffer (readers never observe a half-swapped or
// half-built group), sync-vs-async_full equivalence, delta re-insertion
// retrievability, and train-while-rebuild stress (the TSan CI target).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

#include "core/builder.h"
#include "core/trainer.h"
#include "data/synthetic.h"
#include "lsh/factory.h"
#include "lsh/table_group.h"
#include "metrics/metrics.h"

namespace slide {
namespace {

using namespace std::chrono_literals;

// ---- BackgroundWorker -----------------------------------------------------

TEST(BackgroundWorker, RunsTasksInSubmissionOrder) {
  BackgroundWorker worker;
  EXPECT_TRUE(worker.idle());
  std::vector<int> order;
  std::mutex mutex;
  for (int i = 0; i < 16; ++i) {
    worker.submit([&, i] {
      std::lock_guard lock(mutex);
      order.push_back(i);
    });
  }
  worker.wait_idle();
  ASSERT_EQ(order.size(), 16u);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
  EXPECT_EQ(worker.completed(), 16u);
  EXPECT_TRUE(worker.idle());
}

TEST(BackgroundWorker, WaitIdleRethrowsTaskError) {
  BackgroundWorker worker;
  worker.submit([] { throw Error("maintenance task failed"); });
  EXPECT_THROW(worker.wait_idle(), Error);
  // The error is consumed; the worker keeps running tasks.
  std::atomic<bool> ran{false};
  worker.submit([&] { ran.store(true); });
  worker.wait_idle();
  EXPECT_TRUE(ran.load());
}

TEST(BackgroundWorker, DestructionDiscardsUnstartedTasks) {
  std::atomic<int> ran{0};
  {
    BackgroundWorker worker;
    for (int i = 0; i < 4; ++i) {
      worker.submit([&] {
        std::this_thread::sleep_for(20ms);
        ran.fetch_add(1);
      });
    }
    // Destruction waits for at most the running task; queued ones drop.
  }
  EXPECT_LT(ran.load(), 4);
}

// ---- MaintainedTables double-buffer ---------------------------------------

HashFamilyConfig small_family(int k = 3, int l = 8, Index dim = 16) {
  HashFamilyConfig cfg;
  cfg.kind = HashFamilyKind::kSimhash;
  cfg.k = k;
  cfg.l = l;
  cfg.dim = dim;
  return cfg;
}

std::vector<float> random_rows(Index count, Index dim, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<float> rows(static_cast<std::size_t>(count) * dim);
  for (auto& w : rows) w = rng.normal();
  return rows;
}

TEST(MaintainedTables, PublishSwapsAtomicallyAndPinProtectsReaders) {
  constexpr Index kCount = 256;
  constexpr Index kDim = 16;
  const auto rows = random_rows(kCount, kDim, 7);
  MaintainedTables tables(make_hash_family(small_family()),
                          {.range_pow = 6, .bucket_size = 32}, 11);
  tables.active_group().build_from_rows(rows.data(), kDim, kCount);

  // Readers continuously pin + scan buckets; the main thread rebuilds the
  // shadow and publishes as fast as it can. Every id a reader observes must
  // be a valid neuron id — a half-built or reused-under-us group would leak
  // stale/garbage ids or crash. (This test is TSan-clean without
  // suppressions: the swap path itself has no benign races.)
  std::atomic<bool> stop{false};
  std::atomic<long> observed{0};
  std::atomic<bool> bad{false};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&, t] {
      Rng rng(static_cast<std::uint64_t>(t) + 1);
      std::vector<std::uint32_t> keys(8);
      std::vector<std::span<const Index>> buckets;
      std::vector<float> q(kDim);
      while (!stop.load(std::memory_order_acquire)) {
        for (auto& v : q) v = rng.normal();
        tables.query_keys_dense(q.data(), keys);
        const MaintainedTables::Pin pin = tables.pin();
        pin->buckets(keys, buckets);
        for (const auto& bucket : buckets) {
          for (Index id : bucket) {
            if (id >= kCount) bad.store(true, std::memory_order_release);
            observed.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }

  // Keep publishing until the readers have demonstrably raced a healthy
  // number of swaps (on a single-core box the 50 minimum rounds can finish
  // before a reader is even scheduled), with a generous cap as a backstop.
  int rounds = 0;
  while (rounds < 50 || (observed.load() < 10'000 && rounds < 100'000)) {
    LshTableGroup& shadow = tables.shadow_group();
    shadow.build_from_rows(rows.data(), kDim, kCount);
    tables.publish_shadow();
    ++rounds;
  }
  stop.store(true, std::memory_order_release);
  for (auto& r : readers) r.join();

  EXPECT_FALSE(bad.load());
  EXPECT_GT(observed.load(), 0);
  EXPECT_EQ(tables.publish_count(), static_cast<std::uint64_t>(rounds));
}

TEST(MaintainedTables, ShadowIsLazyUntilFirstAsyncUse) {
  MaintainedTables tables(make_hash_family(small_family()),
                          {.range_pow = 6, .bucket_size = 32}, 11);
  const std::size_t single = tables.memory_bytes();
  EXPECT_GT(single, 0u);
  tables.shadow_group();  // allocates the second buffer
  EXPECT_EQ(tables.memory_bytes(), 2 * single);
}

// ---- Policy plumbing ------------------------------------------------------

TEST(Maintenance, PolicyNamesRoundTrip) {
  for (auto policy :
       {MaintenancePolicy::kSync, MaintenancePolicy::kAsyncFull,
        MaintenancePolicy::kAsyncDelta}) {
    EXPECT_EQ(parse_maintenance_policy(to_string(policy)), policy);
  }
  EXPECT_THROW(parse_maintenance_policy("bogus"), Error);
}

SampledLayer::Config maintained_config(Index units, Index fan_in,
                                       Index target,
                                       MaintenancePolicy policy) {
  SampledLayer::Config cfg;
  cfg.units = units;
  cfg.fan_in = fan_in;
  cfg.activation = Activation::kSoftmax;
  cfg.hashed = true;
  cfg.family.kind = HashFamilyKind::kSimhash;
  cfg.family.k = 4;
  cfg.family.l = 8;
  cfg.table.range_pow = 8;
  cfg.table.bucket_size = 128;
  cfg.sampling.strategy = SamplingStrategy::kVanilla;
  cfg.sampling.target = target;
  cfg.maintenance = policy;
  cfg.seed = 1234;
  return cfg;
}

// ---- Equivalence: sync vs async_full --------------------------------------

TEST(Maintenance, SyncAndAsyncFullRebuildsProduceIdenticalTables) {
  // Same seeds, same weights, single-threaded builds: the only difference
  // is which buffer the rebuild lands in — the resulting tables must be
  // bit-equivalent bucket for bucket.
  SampledLayer sync_layer(
      maintained_config(300, 16, 30, MaintenancePolicy::kSync), 1, 1);
  SampledLayer async_layer(
      maintained_config(300, 16, 30, MaintenancePolicy::kAsyncFull), 1, 1);

  const long due = sync_layer.config().rebuild.initial_period;
  EXPECT_TRUE(sync_layer.maybe_rebuild(due, nullptr));
  EXPECT_TRUE(async_layer.maybe_rebuild(due, nullptr));
  async_layer.quiesce_maintenance();
  EXPECT_EQ(sync_layer.rebuild_count(), 1);
  EXPECT_EQ(async_layer.rebuild_count(), 1);
  EXPECT_EQ(async_layer.tables()->publish_count(), 1u);

  // Weights are identical (same init seed), so per-unit keys agree; compare
  // the full bucket contents each unit lands in.
  std::vector<std::uint32_t> keys(8);
  std::vector<std::span<const Index>> sync_buckets, async_buckets;
  for (Index u = 0; u < 300; ++u) {
    ASSERT_EQ(std::memcmp(sync_layer.weight_row(u), async_layer.weight_row(u),
                          16 * sizeof(float)),
              0);
    sync_layer.tables()->query_keys_dense(sync_layer.weight_row(u), keys);
    sync_layer.tables()->buckets(keys, sync_buckets);
    async_layer.tables()->buckets(keys, async_buckets);
    ASSERT_EQ(sync_buckets.size(), async_buckets.size());
    for (std::size_t t = 0; t < sync_buckets.size(); ++t) {
      ASSERT_EQ(std::vector<Index>(sync_buckets[t].begin(),
                                   sync_buckets[t].end()),
                std::vector<Index>(async_buckets[t].begin(),
                                   async_buckets[t].end()))
          << "unit " << u << " table " << t;
    }
  }
}

// ---- Delta re-insertion ---------------------------------------------------

SyntheticDataset tiny_data(Index features, Index labels) {
  SyntheticConfig cfg;
  cfg.feature_dim = features;
  cfg.label_dim = labels;
  cfg.num_train = 256;
  cfg.num_test = 64;
  cfg.features_per_label = 8;
  cfg.active_per_label = 5;
  cfg.noise_features = 2;
  cfg.seed = 77;
  return make_synthetic_xc(cfg);
}

NetworkConfig maintained_network_config(const SyntheticDataset& data,
                                        MaintenancePolicy policy,
                                        long period = 1) {
  HashFamilyConfig family;
  family.kind = HashFamilyKind::kSimhash;
  family.k = 4;
  family.l = 8;
  NetworkConfig cfg = NetworkBuilder(data.train.feature_dim())
                          .dense(16)
                          .sampled(data.train.label_dim(), family, 16)
                          .maintenance(policy)
                          .max_batch(16)
                          .to_config();
  // Buckets sized so NO insert can ever overflow (k=4 gives only 16
  // distinct fingerprints per table, and trained rows correlate): the
  // retrievability test below relies on reservoir eviction never firing.
  cfg.layers[0].table.range_pow = 6;
  cfg.layers[0].table.bucket_size = 4096;
  cfg.layers[0].rebuild.initial_period = period;
  cfg.layers[0].rebuild.decay = 0.0;
  return cfg;
}

TEST(Maintenance, DeltaReinsertKeepsEveryNeuronRetrievable) {
  const auto data = tiny_data(200, 1024);
  // period 1 + 8 iterations: events 1..8 are all delta passes (hygiene
  // full rebuild fires every 10th event; dirty sets stay far below the
  // escalation threshold of units/2 = 512).
  NetworkConfig cfg =
      maintained_network_config(data, MaintenancePolicy::kAsyncDelta);
  Network net(cfg, 2);
  TrainerConfig tc;
  tc.batch_size = 4;
  tc.num_threads = 2;
  tc.learning_rate = 1e-3f;
  Trainer trainer(net, tc);
  trainer.train(data.train, 8);
  // Settle the final window: any dirty neurons whose event was skipped
  // (worker busy) get their drain pass now.
  net.flush_maintenance();

  const SampledLayer& out = net.output_layer();
  EXPECT_EQ(out.maintenance_policy(), MaintenancePolicy::kAsyncDelta);
  EXPECT_GT(out.delta_reinserted(), 0);
  EXPECT_EQ(out.rebuild_count(), 0) << "expected only delta passes";

  // The invariant delta maintenance preserves (and a sync full rebuild
  // would establish): every neuron is findable under its *current* weight
  // row's keys. Untouched neurons still match their initial-build entries;
  // touched neurons were re-inserted by a delta pass. Buckets are far from
  // capacity, so no reservoir eviction interferes.
  std::vector<std::uint32_t> keys(8);
  std::vector<std::span<const Index>> buckets;
  for (Index u = 0; u < 1024; ++u) {
    net.output_layer().tables()->query_keys_dense(
        net.output_layer().weight_row(u), keys);
    net.output_layer().tables()->buckets(keys, buckets);
    for (std::size_t t = 0; t < buckets.size(); ++t) {
      EXPECT_NE(std::find(buckets[t].begin(), buckets[t].end(), u),
                buckets[t].end())
          << "unit " << u << " missing from table " << t;
    }
  }
}

TEST(Maintenance, DeltaEscalatesToFullRebuildWhenMostOfTheLayerIsDirty) {
  const auto data = tiny_data(200, 64);
  // 64-unit output with target 16 + labels: one batch dirties well over
  // half the layer, so the first maintenance event must escalate.
  NetworkConfig cfg =
      maintained_network_config(data, MaintenancePolicy::kAsyncDelta);
  Network net(cfg, 2);
  TrainerConfig tc;
  tc.batch_size = 16;
  tc.num_threads = 2;
  tc.learning_rate = 1e-3f;
  Trainer trainer(net, tc);
  trainer.train(data.train, 6);
  net.quiesce_maintenance();
  EXPECT_GE(net.output_layer().rebuild_count(), 1);
}

// ---- Train-while-rebuild stress (the TSan CI target) ----------------------

class MaintenanceStress
    : public ::testing::TestWithParam<MaintenancePolicy> {};

TEST_P(MaintenanceStress, TrainingOverlapsBackgroundMaintenanceSafely) {
  const auto data = tiny_data(200, 512);
  NetworkConfig cfg = maintained_network_config(data, GetParam());
  Network net(cfg, 4);
  TrainerConfig tc;
  tc.batch_size = 16;
  tc.num_threads = 4;
  tc.learning_rate = 2e-3f;
  Trainer trainer(net, tc);
  // Maintenance fires every iteration while 4 HOGWILD threads sample from
  // the live tables — publishes, delta inserts, and weight reads all
  // overlap training. 60 iterations is enough for dozens of swaps.
  trainer.train(data.train, 60);
  net.quiesce_maintenance();

  EXPECT_GT(net.output_layer().tables()->publish_count() +
                static_cast<std::uint64_t>(net.output_layer().rebuild_count()) +
                static_cast<std::uint64_t>(
                    net.output_layer().delta_reinserted()),
            0u);

  // The network must still be coherent: a final sync rebuild + exact
  // evaluation behaves like any freshly trained model.
  net.rebuild_all(&trainer.pool());
  const double acc =
      evaluate_p_at_1(net, data.test, trainer.pool(), {.exact = true});
  EXPECT_GE(acc, 0.0);
  EXPECT_LE(acc, 1.0);
}

INSTANTIATE_TEST_SUITE_P(Policies, MaintenanceStress,
                         ::testing::Values(MaintenancePolicy::kAsyncFull,
                                           MaintenancePolicy::kAsyncDelta),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

// ---- Quiesce semantics ----------------------------------------------------

TEST(Maintenance, QuiesceWaitsForInFlightRebuild) {
  SampledLayer layer(
      maintained_config(2'000, 64, 50, MaintenancePolicy::kAsyncFull), 1, 1);
  const long due = layer.config().rebuild.initial_period;
  EXPECT_TRUE(layer.maybe_rebuild(due, nullptr));
  layer.quiesce_maintenance();
  EXPECT_EQ(layer.rebuild_count(), 1);
  EXPECT_EQ(layer.tables()->publish_count(), 1u);
  // Quiesce is idempotent and cheap when idle.
  layer.quiesce_maintenance();
  EXPECT_EQ(layer.rebuild_count(), 1);
}

}  // namespace
}  // namespace slide
