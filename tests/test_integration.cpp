// End-to-end integration tests across the whole stack: SLIDE vs dense
// parity on learnability, per-iteration convergence equivalence (the paper
// Figure 5 right-panels claim, at test scale), XC round-trip into training,
// DWTA on a sparse-input configuration, and the speed mechanism itself
// (fewer active neurons => less work per iteration).
#include <gtest/gtest.h>

#include <sstream>

#include "slide/slide.h"

namespace slide {
namespace {

SyntheticDataset planted(std::uint64_t seed, Index features = 500,
                         Index labels = 100) {
  SyntheticConfig cfg;
  cfg.feature_dim = features;
  cfg.label_dim = labels;
  cfg.num_train = 800;
  cfg.num_test = 200;
  cfg.features_per_label = 12;
  cfg.active_per_label = 7;
  cfg.noise_features = 2;
  cfg.max_labels_per_sample = 2;
  cfg.seed = seed;
  return make_synthetic_xc(cfg);
}

NetworkConfig slide_config(const SyntheticDataset& data, Index target,
                           HashFamilyKind kind = HashFamilyKind::kSimhash) {
  HashFamilyConfig family;
  family.kind = kind;
  family.k = 5;
  family.l = 16;
  family.bin_size = 4;
  NetworkConfig cfg = make_paper_network(data.train.feature_dim(),
                                         data.train.label_dim(), family,
                                         target, /*hidden=*/16);
  cfg.max_batch_size = 32;
  cfg.layers[0].table.range_pow = 9;
  cfg.layers[0].table.bucket_size = 32;
  cfg.layers[0].rebuild.initial_period = 25;
  return cfg;
}

TEST(Integration, SlideReachesDenseAccuracyBallpark) {
  const auto data = planted(101);

  // SLIDE with ~30% active neurons.
  Network net(slide_config(data, 32), 2);
  TrainerConfig tc;
  tc.batch_size = 32;
  tc.num_threads = 2;
  tc.learning_rate = 5e-3f;
  Trainer trainer(net, tc);
  trainer.train(data.train, 250);
  const double slide_acc =
      evaluate_p_at_1(net, data.test, trainer.pool(), {.exact = true});

  // Dense baseline, same architecture/optimizer/schedule.
  DenseNetwork::Config dcfg;
  dcfg.input_dim = data.train.feature_dim();
  dcfg.hidden_units = 16;
  dcfg.output_units = data.train.label_dim();
  dcfg.max_batch_size = 32;
  DenseNetwork dense(dcfg, 2);
  ThreadPool pool(2);
  Batcher batcher(data.train, 32, true, 2);
  for (int i = 0; i < 250; ++i)
    dense.step(data.train, batcher.next(), 5e-3f, pool);
  const double dense_acc = evaluate_p_at_1(dense, data.test, pool);

  EXPECT_GT(slide_acc, 0.35);
  EXPECT_GT(dense_acc, 0.35);
  // "Adaptively selecting neurons does not hurt convergence": within a
  // tolerance band of the dense result.
  EXPECT_GT(slide_acc, dense_acc - 0.12);
}

TEST(Integration, DwtaHandlesSparseInputConfiguration) {
  // Amazon-style configuration: DWTA family on the output layer.
  const auto data = planted(103);
  Network net(slide_config(data, 32, HashFamilyKind::kDwta), 2);
  TrainerConfig tc;
  tc.batch_size = 32;
  tc.num_threads = 2;
  tc.learning_rate = 5e-3f;
  Trainer trainer(net, tc);
  trainer.train(data.train, 200);
  const double acc =
      evaluate_p_at_1(net, data.test, trainer.pool(), {.exact = true});
  EXPECT_GT(acc, 0.3);
}

TEST(Integration, XcRoundTripFeedsTraining) {
  const auto data = planted(105, 300, 50);
  std::stringstream buffer;
  write_xc(buffer, data.train);
  const Dataset loaded = read_xc(buffer, /*l2_normalize=*/false);
  ASSERT_EQ(loaded.size(), data.train.size());

  HashFamilyConfig family;
  family.kind = HashFamilyKind::kSimhash;
  family.k = 4;
  family.l = 12;
  NetworkConfig cfg =
      make_paper_network(loaded.feature_dim(), loaded.label_dim(), family,
                         24, 16);
  cfg.max_batch_size = 32;
  cfg.layers[0].table.range_pow = 8;
  Network net(cfg, 2);
  TrainerConfig tc;
  tc.batch_size = 32;
  tc.num_threads = 2;
  tc.learning_rate = 5e-3f;
  Trainer trainer(net, tc);
  trainer.train(loaded, 150);
  const double acc =
      evaluate_p_at_1(net, data.test, trainer.pool(), {.exact = true});
  EXPECT_GT(acc, 0.3);
}

TEST(Integration, SmallerActiveSetDoesLessWorkPerIteration) {
  // The core systems claim: per-iteration compute scales with the active
  // set, not the layer width. Compare layer-compute seconds at two targets.
  const auto data = planted(107, 500, 400);
  auto run = [&](Index target) {
    Network net(slide_config(data, target), 2);
    net.output_layer().reset_phase_timers();
    TrainerConfig tc;
    tc.batch_size = 32;
    tc.num_threads = 1;
    Trainer trainer(net, tc);
    trainer.train(data.train, 30);
    return net.output_layer().compute_seconds();
  };
  const double small = run(8);
  const double large = run(200);
  EXPECT_LT(small * 2.0, large);
}

TEST(Integration, SampledInferenceApproachesExactAfterTraining) {
  const auto data = planted(109);
  Network net(slide_config(data, 48), 2);
  TrainerConfig tc;
  tc.batch_size = 32;
  tc.num_threads = 2;
  tc.learning_rate = 5e-3f;
  Trainer trainer(net, tc);
  trainer.train(data.train, 250);
  net.rebuild_all(&trainer.pool());
  const double exact =
      evaluate_p_at_1(net, data.test, trainer.pool(), {.exact = true});
  const double sampled =
      evaluate_p_at_1(net, data.test, trainer.pool(), {.exact = false});
  EXPECT_GT(sampled, exact * 0.6);  // hash-sampled inference stays close
}

TEST(Integration, HugepagesToggleDoesNotChangeResults) {
  const auto data = planted(111, 300, 50);
  auto run = [&](bool huge) {
    set_hugepages_enabled(huge);
    NetworkConfig cfg = slide_config(data, 16);
    Network net(cfg, 1);
    TrainerConfig tc;
    tc.batch_size = 16;
    tc.num_threads = 1;
    tc.seed = 5;
    Trainer trainer(net, tc);
    Batcher batcher(data.train, 16, true, 3);
    float total = 0.0f;
    for (int i = 0; i < 20; ++i)
      total += trainer.step(data.train, batcher.next());
    set_hugepages_enabled(true);
    return total;
  };
  EXPECT_EQ(run(true), run(false));  // bit-identical: allocation-only change
}

TEST(Integration, SimdToggleKeepsTrainingCorrect) {
  const auto data = planted(113, 300, 50);
  auto run = [&](bool simd_on) {
    simd::set_simd_level(simd_on ? simd::detected_level()
                                 : simd::SimdLevel::kScalar);
    NetworkConfig cfg = slide_config(data, 16);
    Network net(cfg, 2);
    TrainerConfig tc;
    tc.batch_size = 16;
    tc.num_threads = 2;
    tc.learning_rate = 5e-3f;
    Trainer trainer(net, tc);
    trainer.train(data.train, 100);
    const double acc =
        evaluate_p_at_1(net, data.test, trainer.pool(), {.exact = true});
    simd::set_simd_level(simd::detected_level());
    return acc;
  };
  EXPECT_GT(run(true), 0.25);
  EXPECT_GT(run(false), 0.25);
}

// ---------------------------------------------------------------------------
// Golden end-to-end determinism: a fixed-seed, single-threaded, sync-
// maintenance, scalar-kernel 2-epoch train must reproduce the exact same
// weights (FNV-1a digest) and clear an accuracy floor. This is the
// regression tripwire that catches refactors which change numerics or RNG
// consumption anywhere in the stack — beyond what unit-level parity tests
// see. If a PR changes the trajectory *intentionally* (new init, different
// sampling order), re-pin the digest printed in the failure message and
// say why in the PR.
// ---------------------------------------------------------------------------

std::uint64_t fnv1a(std::uint64_t h, std::span<const float> data) {
  const unsigned char* p = reinterpret_cast<const unsigned char*>(data.data());
  const std::size_t n = data.size() * sizeof(float);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

std::uint64_t weight_digest(const Network& net) {
  std::uint64_t h = 1469598103934665603ull;  // FNV offset basis
  h = fnv1a(h, net.embedding().weights_span());
  h = fnv1a(h, net.embedding().bias_span());
  for (int i = 0; i < net.stack_depth(); ++i) {
    const Layer& layer = net.stack(i);
    for (int s = 0; s < layer.num_shards(); ++s) {
      h = fnv1a(h, layer.shard_weights(s));
      h = fnv1a(h, layer.shard_bias(s));
    }
  }
  return h;
}

TEST(Integration, GoldenFixedSeedDigestAndAccuracyFloor) {
  // Pin the dispatch to the scalar kernels: the digest must not depend on
  // the host's vector ISA. (Restored on every exit path.)
  struct LevelGuard {
    simd::SimdLevel entry = simd::active_level();
    ~LevelGuard() { simd::set_simd_level(entry); }
  } guard;
  simd::set_simd_level(simd::SimdLevel::kScalar);

  const auto data = planted(1234);
  auto run_once = [&]() -> std::pair<std::uint64_t, double> {
    NetworkConfig cfg = slide_config(data, 24);
    Network net(cfg, 1);
    TrainerConfig tc;
    tc.batch_size = 32;
    tc.num_threads = 1;  // single-threaded: no HOGWILD accumulation races
    tc.learning_rate = 5e-3f;
    tc.seed = 99;
    Trainer trainer(net, tc);
    // 2 epochs over 800 samples at batch 32.
    trainer.train(data.train, 2 * 25);
    const double acc =
        evaluate_p_at_1(net, data.test, trainer.pool(), {.exact = true});
    return {weight_digest(net), acc};
  };

  // Hard determinism: two in-process runs must agree to the last bit —
  // any RNG misuse, uninitialized read, or state leaking between
  // constructions shows up here, in every build flavor.
  const auto [digest, acc] = run_once();
  const auto [digest2, acc2] = run_once();
  EXPECT_EQ(digest, digest2) << "fixed-seed training is not deterministic";
  EXPECT_EQ(acc, acc2);
  EXPECT_GE(acc, 0.35) << "accuracy floor breached (got " << acc << ")";

  // Cross-PR drift tripwire: the digest is additionally pinned, but only
  // in the build flavor it was recorded under — optimized -march=native on
  // an AVX-512 host, where the compiler's FMA-contraction and
  // auto-vectorization choices for the -O3 training loops match the
  // reference (pinning SLIDE_SIMD_LEVEL only fixes the dispatch table, not
  // the codegen of the surrounding loops). Debug, SLIDE_PORTABLE, and
  // non-AVX-512 hosts legitimately produce a different — still
  // deterministic, still floor-checked — trajectory and skip the pin.
#if defined(NDEBUG) && defined(__FMA__) && defined(__AVX512F__)
  const std::uint64_t kPinnedDigest = 0x661863b285ffb6eeull;
  EXPECT_EQ(digest, kPinnedDigest)
      << "golden weight digest moved: got 0x" << std::hex << digest
      << " — if the numeric trajectory changed intentionally, re-pin "
         "kPinnedDigest to this value";
#else
  std::printf("[golden] digest 0x%llx (pin checked only in native AVX-512 "
              "Release builds)\n",
              static_cast<unsigned long long>(digest));
#endif
}

}  // namespace
}  // namespace slide
