// MIPS transform tests: the Sign-ALSH algebra, the monotonicity of
// augmented-space cosine in the inner product, and end-to-end retrieval of
// large-inner-product items through Simhash tables (paper §2.1.1).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>

#include "lsh/factory.h"
#include "lsh/mips.h"
#include "lsh/table_group.h"
#include "simd/kernels.h"
#include "sys/rng.h"

namespace slide {
namespace {

std::vector<float> random_vec(Index dim, Rng& rng, float scale = 1.0f) {
  std::vector<float> v(dim);
  for (auto& x : v) x = scale * rng.normal();
  return v;
}

double cosine(const std::vector<float>& a, const std::vector<float>& b) {
  const float ab = simd::dot(a.data(), b.data(), a.size());
  const float aa = simd::dot(a.data(), a.data(), a.size());
  const float bb = simd::dot(b.data(), b.data(), b.size());
  return ab / std::sqrt(static_cast<double>(aa) * bb);
}

TEST(MipsTransform, ScaledDataNormIsBoundedByU) {
  MipsTransform t({.dim = 16, .m = 3, .u = 0.75f});
  Rng rng(1);
  std::vector<std::vector<float>> rows;
  std::vector<float> flat;
  for (int i = 0; i < 20; ++i) {
    rows.push_back(random_vec(16, rng, 1.0f + rng.uniform_float() * 3.0f));
    flat.insert(flat.end(), rows.back().begin(), rows.back().end());
  }
  t.fit(flat.data(), 16, 20);
  for (const auto& row : rows) {
    std::vector<float> out(t.augmented_dim());
    t.transform_data(row.data(), out.data());
    const float scaled_norm_sq = simd::dot(out.data(), out.data(), 16);
    EXPECT_LE(std::sqrt(scaled_norm_sq), 0.7501f);
  }
}

TEST(MipsTransform, AugmentationFollowsSignAlshFormula) {
  MipsTransform t({.dim = 4, .m = 3, .u = 0.5f});
  t.set_max_norm(2.0f);  // scale = 0.25
  const std::vector<float> x = {2.0f, 0.0f, 0.0f, 0.0f};  // ||x|| = 2
  std::vector<float> out(t.augmented_dim());
  t.transform_data(x.data(), out.data());
  EXPECT_FLOAT_EQ(out[0], 0.5f);  // 0.25 * 2
  const float n2 = 0.25f;         // ||Sx||^2 = 0.5^2
  EXPECT_FLOAT_EQ(out[4], 0.5f - n2);
  EXPECT_FLOAT_EQ(out[5], 0.5f - n2 * n2);
  EXPECT_FLOAT_EQ(out[6], 0.5f - n2 * n2 * n2 * n2);
}

TEST(MipsTransform, QuerySideIsNormalizedAndZeroPadded) {
  MipsTransform t({.dim = 3, .m = 2, .u = 0.75f});
  const std::vector<float> q = {3.0f, 0.0f, 4.0f};
  std::vector<float> out(t.augmented_dim());
  t.transform_query(q.data(), out.data());
  EXPECT_FLOAT_EQ(out[0], 0.6f);
  EXPECT_FLOAT_EQ(out[2], 0.8f);
  EXPECT_FLOAT_EQ(out[3], 0.0f);
  EXPECT_FLOAT_EQ(out[4], 0.0f);
}

TEST(MipsTransform, AugmentedCosineIsMonotoneInInnerProduct) {
  // Two data vectors with the SAME direction as the query but different
  // norms: plain cosine ties them, the MIPS transform must rank the larger
  // inner product higher. Plus a high-cosine small-norm distractor.
  const Index dim = 8;
  MipsTransform t({.dim = dim, .m = 3, .u = 0.75f});
  t.set_max_norm(4.0f);

  std::vector<float> q(dim, 0.0f);
  q[0] = 1.0f;
  std::vector<float> big(dim, 0.0f), small(dim, 0.0f);
  big[0] = 4.0f;    // q.big = 4
  small[0] = 1.0f;  // q.small = 1 (same cosine = 1)

  std::vector<float> tq(t.augmented_dim()), tbig(t.augmented_dim()),
      tsmall(t.augmented_dim());
  t.transform_query(q.data(), tq.data());
  t.transform_data(big.data(), tbig.data());
  t.transform_data(small.data(), tsmall.data());

  EXPECT_GT(cosine(tq, tbig), cosine(tq, tsmall));
}

TEST(MipsTransform, SweepMonotonicityOverNorms) {
  const Index dim = 8;
  MipsTransform t({.dim = dim, .m = 3, .u = 0.75f});
  t.set_max_norm(5.0f);
  std::vector<float> q(dim, 0.0f);
  q[0] = 1.0f;
  std::vector<float> tq(t.augmented_dim());
  t.transform_query(q.data(), tq.data());

  double prev = -2.0;
  for (float norm = 0.5f; norm <= 5.01f; norm += 0.5f) {
    std::vector<float> x(dim, 0.0f);
    x[0] = norm;  // inner product with q = norm
    std::vector<float> tx(t.augmented_dim());
    t.transform_data(x.data(), tx.data());
    const double c = cosine(tq, tx);
    EXPECT_GT(c, prev) << "norm=" << norm;
    prev = c;
  }
}

TEST(MipsEndToEnd, RetrievesLargeInnerProductNeurons) {
  // Index transformed neuron rows into Simhash tables; querying with the
  // transformed query must retrieve the top-inner-product rows far more
  // often than random rows — the LSH-as-MIPS-sampler property SLIDE's
  // neuron selection relies on.
  const Index n = 2'000, dim = 32;
  Rng rng(9);
  std::vector<float> rows(static_cast<std::size_t>(n) * dim);
  for (auto& w : rows) w = rng.normal();

  MipsTransform t({.dim = dim, .m = 3, .u = 0.75f});
  t.fit(rows.data(), dim, n);

  HashFamilyConfig family;
  family.kind = HashFamilyKind::kSimhash;
  family.k = 6;
  family.l = 30;
  family.dim = t.augmented_dim();
  LshTableGroup tables(make_hash_family(family),
                       {.range_pow = 10, .bucket_size = 64});
  {
    Rng ins(10);
    std::vector<float> aug(t.augmented_dim());
    for (Index i = 0; i < n; ++i) {
      t.transform_data(rows.data() + static_cast<std::size_t>(i) * dim,
                       aug.data());
      tables.insert_dense(i, aug.data(), ins);
    }
  }

  int top_hits = 0, random_hits = 0;
  const int trials = 30;
  std::vector<std::uint32_t> keys(30);
  std::vector<std::span<const Index>> buckets;
  for (int trial = 0; trial < trials; ++trial) {
    const auto q = random_vec(dim, rng);
    // Ground truth: argmax inner product.
    Index best = 0;
    float best_ip = -1e30f;
    for (Index i = 0; i < n; ++i) {
      const float ip = simd::dot(
          q.data(), rows.data() + static_cast<std::size_t>(i) * dim, dim);
      if (ip > best_ip) {
        best_ip = ip;
        best = i;
      }
    }
    std::vector<float> aug_q(t.augmented_dim());
    t.transform_query(q.data(), aug_q.data());
    tables.query_keys_dense(aug_q.data(), keys);
    tables.buckets(keys, buckets);
    const Index random_id = rng.uniform(n);
    bool found_top = false, found_random = false;
    for (const auto& b : buckets) {
      if (std::find(b.begin(), b.end(), best) != b.end()) found_top = true;
      if (std::find(b.begin(), b.end(), random_id) != b.end())
        found_random = true;
    }
    top_hits += found_top ? 1 : 0;
    random_hits += found_random ? 1 : 0;
  }
  EXPECT_GT(top_hits, random_hits + trials / 4);
}

TEST(MipsTransform, RejectsBadConfig) {
  EXPECT_THROW(MipsTransform({.dim = 0, .m = 3, .u = 0.75f}), Error);
  EXPECT_THROW(MipsTransform({.dim = 4, .m = 0, .u = 0.75f}), Error);
  EXPECT_THROW(MipsTransform({.dim = 4, .m = 3, .u = 1.5f}), Error);
  MipsTransform ok({.dim = 4, .m = 3, .u = 0.75f});
  EXPECT_THROW(ok.set_max_norm(0.0f), Error);
}

}  // namespace
}  // namespace slide
