// Serving-path tests: request queue semantics, latency histogram,
// snapshot store hot-swap, and the inference engine's micro-batching,
// backpressure, and result-correctness contracts.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <set>
#include <sstream>
#include <thread>

#include "core/builder.h"
#include "core/serialize.h"
#include "core/trainer.h"
#include "data/synthetic.h"
#include "serve/engine.h"

namespace slide {
namespace {

using namespace std::chrono_literals;

SyntheticDataset planted() {
  SyntheticConfig cfg;
  cfg.feature_dim = 300;
  cfg.label_dim = 60;
  cfg.num_train = 400;
  cfg.num_test = 100;
  cfg.features_per_label = 10;
  cfg.active_per_label = 6;
  cfg.noise_features = 2;
  cfg.seed = 911;
  return make_synthetic_xc(cfg);
}

NetworkConfig planted_config(const SyntheticDataset& data) {
  HashFamilyConfig family;
  family.kind = HashFamilyKind::kSimhash;
  family.k = 5;
  family.l = 12;
  NetworkConfig cfg = make_paper_network(data.train.feature_dim(),
                                         data.train.label_dim(), family, 20,
                                         16);
  cfg.max_batch_size = 32;
  cfg.layers[0].table.range_pow = 9;
  return cfg;
}

std::shared_ptr<const Network> trained_network(const SyntheticDataset& data,
                                               long iterations = 100) {
  auto net = std::make_shared<Network>(planted_config(data), 2);
  TrainerConfig tc;
  tc.batch_size = 32;
  tc.num_threads = 2;
  tc.learning_rate = 5e-3f;
  Trainer trainer(*net, tc);
  trainer.train(data.train, iterations);
  net->rebuild_all(&trainer.pool());
  return net;
}

ServeRequest make_request(const SparseVector& x, int k = 3,
                          Priority priority = Priority::kDefault,
                          std::chrono::steady_clock::time_point deadline =
                              kNoDeadline) {
  ServeRequest r;
  r.features = x;
  r.top_k = k;
  r.priority = priority;
  r.deadline = deadline;
  r.enqueue_time = std::chrono::steady_clock::now();
  return r;
}

/// future.get() wrapped so tests can assert on the shed taxonomy.
enum class Outcome { kServed, kShed, kFailed };
Outcome outcome_of(std::future<Prediction>& f,
                   ShedReason* reason = nullptr) {
  try {
    f.get();
    return Outcome::kServed;
  } catch (const ShedError& e) {
    if (reason != nullptr) *reason = e.reason();
    return Outcome::kShed;
  } catch (...) {
    return Outcome::kFailed;
  }
}

// ---- RequestQueue ---------------------------------------------------------

TEST(RequestQueue, BackpressureRejectsWhenFull) {
  const auto data = planted();
  RequestQueue queue(2);
  EXPECT_TRUE(queue.try_push(make_request(data.test[0].features)));
  EXPECT_TRUE(queue.try_push(make_request(data.test[1].features)));
  EXPECT_FALSE(queue.try_push(make_request(data.test[2].features)));
  EXPECT_EQ(queue.depth(), 2u);
  ServeRequest out;
  ASSERT_TRUE(queue.pop(out));
  EXPECT_TRUE(queue.try_push(make_request(data.test[2].features)));
}

TEST(RequestQueue, PopUntilTimesOutOnEmptyQueue) {
  RequestQueue queue(4);
  ServeRequest out;
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_FALSE(queue.pop_until(out, t0 + 20ms));
  EXPECT_GE(std::chrono::steady_clock::now() - t0, 20ms);
}

TEST(RequestQueue, CloseDrainsRemainingItems) {
  const auto data = planted();
  RequestQueue queue(4);
  ASSERT_TRUE(queue.try_push(make_request(data.test[0].features)));
  ASSERT_TRUE(queue.try_push(make_request(data.test[1].features)));
  queue.close();
  EXPECT_FALSE(queue.try_push(make_request(data.test[2].features)));
  ServeRequest out;
  EXPECT_TRUE(queue.pop(out));
  EXPECT_TRUE(queue.pop(out));
  EXPECT_FALSE(queue.pop(out));  // closed and drained
}

TEST(RequestQueue, PauseHoldsPopsButAdmits) {
  const auto data = planted();
  RequestQueue queue(4);
  queue.set_paused(true);
  ASSERT_TRUE(queue.try_push(make_request(data.test[0].features)));
  ServeRequest out;
  EXPECT_FALSE(
      queue.pop_until(out, std::chrono::steady_clock::now() + 10ms));
  queue.set_paused(false);
  EXPECT_TRUE(
      queue.pop_until(out, std::chrono::steady_clock::now() + 100ms));
}

TEST(RequestQueue, StrictPriorityPopOrder) {
  const auto data = planted();
  RequestQueue queue(8);
  // Enqueue in inverse priority order; pops must come out strict-priority,
  // FIFO within a lane.
  ASSERT_TRUE(queue.try_push(make_request(data.test[0].features, 1,
                                          Priority::kBatch)));
  ASSERT_TRUE(queue.try_push(make_request(data.test[1].features, 2,
                                          Priority::kDefault)));
  ASSERT_TRUE(queue.try_push(make_request(data.test[2].features, 3,
                                          Priority::kInteractive)));
  ASSERT_TRUE(queue.try_push(make_request(data.test[3].features, 4,
                                          Priority::kInteractive)));
  EXPECT_EQ(queue.lane_depth(Priority::kInteractive), 2u);
  EXPECT_EQ(queue.lane_depth(Priority::kDefault), 1u);
  EXPECT_EQ(queue.lane_depth(Priority::kBatch), 1u);
  // A new interactive arrival waits behind its own lane only; a batch
  // arrival waits behind everything.
  EXPECT_EQ(queue.depth_ahead_of(Priority::kInteractive), 2u);
  EXPECT_EQ(queue.depth_ahead_of(Priority::kDefault), 3u);
  EXPECT_EQ(queue.depth_ahead_of(Priority::kBatch), 4u);
  ServeRequest out;
  ASSERT_TRUE(queue.pop(out));
  EXPECT_EQ(out.top_k, 3);  // interactive, oldest first
  ASSERT_TRUE(queue.pop(out));
  EXPECT_EQ(out.top_k, 4);
  ASSERT_TRUE(queue.pop(out));
  EXPECT_EQ(out.top_k, 2);  // then default
  ASSERT_TRUE(queue.pop(out));
  EXPECT_EQ(out.top_k, 1);  // batch last
}

TEST(RequestQueue, FullQueueEvictsLowestPriorityForHigherArrival) {
  const auto data = planted();
  RequestQueue queue(2);
  ASSERT_TRUE(queue.try_push(make_request(data.test[0].features, 1,
                                          Priority::kBatch)));
  ASSERT_TRUE(queue.try_push(make_request(data.test[1].features, 2,
                                          Priority::kBatch)));
  // Same priority does not evict: backpressure.
  auto same = queue.try_push(make_request(data.test[2].features, 3,
                                          Priority::kBatch));
  EXPECT_FALSE(same);
  EXPECT_FALSE(same.evicted.has_value());
  // Higher priority bumps the *youngest* batch request (top_k 2).
  auto bumped = queue.try_push(make_request(data.test[3].features, 4,
                                            Priority::kInteractive));
  EXPECT_TRUE(bumped);
  ASSERT_TRUE(bumped.evicted.has_value());
  EXPECT_EQ(bumped.evicted->top_k, 2);
  EXPECT_EQ(queue.depth(), 2u);
  EXPECT_EQ(queue.lane_depth(Priority::kInteractive), 1u);
  EXPECT_EQ(queue.lane_depth(Priority::kBatch), 1u);
  // With {interactive, batch} queued, a default arrival evicts the batch
  // one; once only same-or-higher work remains, it is backpressure again.
  auto def = queue.try_push(make_request(data.test[4].features, 5,
                                         Priority::kDefault));
  EXPECT_TRUE(def);
  ASSERT_TRUE(def.evicted.has_value());
  EXPECT_EQ(def.evicted->top_k, 1);
  EXPECT_FALSE(queue.try_push(make_request(data.test[5].features, 6,
                                           Priority::kDefault)));
}

// ---- LatencyHistogram -----------------------------------------------------

TEST(LatencyHistogram, PercentilesTrackObservations) {
  LatencyHistogram hist;
  EXPECT_EQ(hist.count(), 0u);
  EXPECT_EQ(hist.percentile(0.5), 0.0);
  for (int i = 1; i <= 1000; ++i) hist.record(static_cast<double>(i));
  EXPECT_EQ(hist.count(), 1000u);
  EXPECT_DOUBLE_EQ(hist.min_us(), 1.0);
  EXPECT_DOUBLE_EQ(hist.max_us(), 1000.0);
  EXPECT_NEAR(hist.mean_us(), 500.5, 1e-6);
  // Geometric buckets: <~19% relative error plus interpolation slack.
  EXPECT_NEAR(hist.percentile(0.50), 500.0, 150.0);
  EXPECT_NEAR(hist.percentile(0.95), 950.0, 250.0);
  EXPECT_GE(hist.percentile(0.99), hist.percentile(0.95));
  EXPECT_LE(hist.percentile(0.99), hist.max_us());
}

TEST(LatencyHistogram, SubMicrosecondObservationsStayInRange) {
  LatencyHistogram hist;
  for (int i = 0; i < 100; ++i) hist.record(0.5);
  EXPECT_DOUBLE_EQ(hist.max_us(), 0.5);
  EXPECT_LE(hist.percentile(0.5), hist.max_us());
  EXPECT_LE(hist.summary().p99_us, hist.max_us());
  EXPECT_GE(hist.percentile(0.5), hist.min_us());
}

TEST(LatencyHistogram, ConcurrentRecordsAreAllCounted) {
  LatencyHistogram hist;
  constexpr int kThreads = 4, kPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&hist, t] {
      for (int i = 0; i < kPerThread; ++i)
        hist.record(static_cast<double>(100 + t));
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(hist.count(), static_cast<std::uint64_t>(kThreads * kPerThread));
  const auto s = hist.summary();
  EXPECT_EQ(s.count, hist.count());
  EXPECT_GE(s.p99_us, s.p50_us);
}

// ---- ModelStore -----------------------------------------------------------

TEST(ModelStore, PublishBumpsVersionAndSwapsPointer) {
  const auto data = planted();
  auto store = std::make_shared<ModelStore>(trained_network(data, 20));
  const auto snap1 = store->current();
  EXPECT_EQ(snap1->version, 1u);
  const std::uint64_t v2 = store->publish(trained_network(data, 25));
  EXPECT_EQ(v2, 2u);
  const auto snap2 = store->current();
  EXPECT_NE(snap1->network.get(), snap2->network.get());
  // The old snapshot stays valid for readers still holding it (RCU).
  InferenceContext ctx(snap1->max_units);
  EXPECT_LT(snap1->network->predict_top1(data.test[0].features, ctx, true),
            snap1->network->output_dim());
}

TEST(ModelStore, CheckpointRoundTripPreservesExactPredictions) {
  const auto data = planted();
  auto trained = trained_network(data);
  std::stringstream checkpoint(std::ios::in | std::ios::out |
                               std::ios::binary);
  save_weights(*trained, checkpoint);
  checkpoint.seekg(0);

  auto store = std::make_shared<ModelStore>(trained_network(data, 5));
  const std::uint64_t v =
      store->load_checkpoint(planted_config(data), checkpoint, "roundtrip", 2);
  EXPECT_EQ(v, 2u);
  const auto snap = store->current();
  InferenceContext ctx_a(trained->max_sampled_units());
  InferenceContext ctx_b(snap->max_units);
  for (std::size_t i = 0; i < 20; ++i) {
    EXPECT_EQ(
        trained->predict_topk(data.test[i].features, ctx_a, 5, true),
        snap->network->predict_topk(data.test[i].features, ctx_b, 5, true));
  }
}

TEST(ModelStore, BootsDirectlyFromCheckpointFile) {
  const auto data = planted();
  auto trained = trained_network(data);
  const std::string path =
      testing::TempDir() + "slide_test_serve_checkpoint.bin";
  save_weights_file(*trained, path);
  auto store = ModelStore::from_checkpoint_file(planted_config(data), path, 1);
  EXPECT_EQ(store->version(), 1u);
  const auto snap = store->current();
  EXPECT_EQ(snap->source, path);
  InferenceContext ctx_a(trained->max_sampled_units());
  InferenceContext ctx_b(snap->max_units);
  EXPECT_EQ(trained->predict_topk(data.test[0].features, ctx_a, 5, true),
            snap->network->predict_topk(data.test[0].features, ctx_b, 5,
                                        true));
  std::remove(path.c_str());
}

TEST(ModelStore, AsyncLoadSurvivesCallerDroppingTheStore) {
  const auto data = planted();
  const std::string path =
      testing::TempDir() + "slide_test_serve_async_checkpoint.bin";
  save_weights_file(*trained_network(data, 5), path);
  std::future<std::uint64_t> pending;
  {
    auto store = std::make_shared<ModelStore>(trained_network(data, 5));
    pending = store->load_checkpoint_file_async(planted_config(data), path, 1);
    // The caller's reference dies here; the load task co-owns the store.
  }
  EXPECT_EQ(pending.get(), 2u);
  std::remove(path.c_str());
}

TEST(ModelStore, Bf16PublishHalvesWeightMemoryAndKeepsTop1Agreement) {
  const auto data = planted();
  auto trained = trained_network(data, 150);
  const std::string path =
      testing::TempDir() + "slide_test_serve_bf16_checkpoint.bin";
  save_weights_file(*trained, path);

  // Same checkpoint booted at both precisions — the serve-side knob is
  // NetworkConfig::precision.
  auto fp32_store =
      ModelStore::from_checkpoint_file(planted_config(data), path, 1);
  NetworkConfig bf16_cfg = planted_config(data);
  bf16_cfg.precision = Precision::kBF16;
  auto bf16_store = ModelStore::from_checkpoint_file(bf16_cfg, path, 1);

  const auto fp32_snap = fp32_store->current();
  const auto bf16_snap = bf16_store->current();
  const MemoryFootprint f32 = fp32_snap->network->memory_footprint();
  const MemoryFootprint f16 = bf16_snap->network->memory_footprint();
  // The quantized snapshot's scoring path reads half the weight bytes
  // (plus the tiny fp32 bias term).
  EXPECT_GE(f16.inference_weight_bytes, f32.inference_weight_bytes / 2);
  EXPECT_LT(f16.inference_weight_bytes,
            f32.inference_weight_bytes / 2 + f32.inference_weight_bytes / 20);
  EXPECT_GT(f16.mirror_bytes, 0u);

  // Acceptance bar: >= 99% top-1 agreement with the fp32 snapshot.
  InferenceContext ctx_a(fp32_snap->max_units), ctx_b(bf16_snap->max_units);
  int agree = 0, total = 0;
  for (const Sample& s : data.test.samples()) {
    agree += fp32_snap->network->predict_top1(s.features, ctx_a, true) ==
             bf16_snap->network->predict_top1(s.features, ctx_b, true);
    ++total;
  }
  EXPECT_GE(agree, (total * 99) / 100) << agree << "/" << total;
  std::remove(path.c_str());
}

TEST(ModelStore, PublishClonePrecisionOverrideQuantizesTheSnapshot) {
  const auto data = planted();
  auto trained = trained_network(data, 60);
  auto store = std::make_shared<ModelStore>(trained_network(data, 5));
  // The trainer's network stays fp32; the published clone serves bf16.
  publish_clone(*store, *trained, Precision::kBF16, 1, "bf16-clone");
  const auto snap = store->current();
  EXPECT_EQ(snap->network->precision(), Precision::kBF16);
  EXPECT_GT(snap->network->memory_footprint().mirror_bytes, 0u);
  EXPECT_EQ(trained->precision(), Precision::kFP32);
  // Serving through the engine works on the quantized snapshot.
  ServeConfig cfg;
  cfg.num_workers = 1;
  InferenceEngine engine(store, cfg);
  auto f = engine.submit(data.test[0].features, {.top_k = 3});
  ASSERT_TRUE(f.has_value());
  const Prediction p = f->get();
  EXPECT_FALSE(p.labels.empty());
  engine.stop();
}

TEST(ModelStore, LoadCheckpointRejectsArchitectureMismatch) {
  const auto data = planted();
  auto store = std::make_shared<ModelStore>(trained_network(data, 5));
  std::stringstream checkpoint(std::ios::in | std::ios::out |
                               std::ios::binary);
  save_weights(*trained_network(data, 5), checkpoint);
  checkpoint.seekg(0);
  NetworkConfig wrong = planted_config(data);
  wrong.hidden_units += 1;
  EXPECT_THROW(store->load_checkpoint(wrong, checkpoint, "mismatch", 1),
               Error);
  EXPECT_EQ(store->version(), 1u);  // store unchanged on failure
}

// ---- InferenceEngine ------------------------------------------------------

TEST(InferenceEngine, ExactResultsMatchDirectPredictTopk) {
  const auto data = planted();
  auto network = trained_network(data);
  auto store = std::make_shared<ModelStore>(network);
  ServeConfig cfg;
  cfg.num_workers = 2;
  cfg.max_batch = 4;
  cfg.max_wait_us = 100;
  cfg.exact = true;
  InferenceEngine engine(store, cfg);

  std::vector<std::future<Prediction>> futures;
  for (std::size_t i = 0; i < 40; ++i) {
    auto f = engine.submit(data.test[i].features, {.top_k = 5});
    ASSERT_TRUE(f.has_value()) << i;
    futures.push_back(std::move(*f));
  }
  InferenceContext ctx(network->max_sampled_units());
  for (std::size_t i = 0; i < futures.size(); ++i) {
    Prediction p = futures[i].get();
    EXPECT_EQ(p.labels,
              network->predict_topk(data.test[i].features, ctx, 5, true))
        << i;
    EXPECT_EQ(p.snapshot_version, 1u);
    EXPECT_GT(p.latency_us, 0.0);
  }
  const ServeStats stats = engine.stats();
  EXPECT_EQ(stats.submitted, 40u);
  EXPECT_EQ(stats.completed, 40u);
  EXPECT_EQ(stats.rejected, 0u);
  EXPECT_EQ(stats.latency.count, 40u);
}

TEST(InferenceEngine, PredictionsNeverObserveHalfSwappedTables) {
  // The serving-side guarantee of asynchronous LSH maintenance: while a
  // background thread republishes the served network's hash tables (shadow
  // build + atomic swap, lsh/table_group.h), engine workers keep predicting
  // and every result stays a valid label. Weights are never touched here,
  // so this is TSan-clean without suppressions — it isolates the swap path.
  const auto data = planted();
  NetworkConfig cfg = planted_config(data);
  cfg.layers[0].maintenance = MaintenancePolicy::kAsyncFull;
  cfg.layers[0].rebuild.initial_period = 1;
  cfg.layers[0].rebuild.decay = 0.0;
  auto net = std::make_shared<Network>(cfg, 2);
  {
    TrainerConfig tc;
    tc.batch_size = 32;
    tc.num_threads = 2;
    tc.learning_rate = 5e-3f;
    Trainer trainer(*net, tc);
    trainer.train(data.train, 30);
  }
  net->quiesce_maintenance();

  auto store = std::make_shared<ModelStore>(net);
  ServeConfig scfg;
  scfg.num_workers = 2;
  scfg.max_batch = 4;
  scfg.max_wait_us = 100;
  InferenceEngine engine(store, scfg);

  // Hammer maintenance events: every maybe_rebuild call is due (period 1,
  // no decay), so the background worker rebuilds + publishes continuously.
  // Driven at the layer level: Network::maybe_rebuild brackets itself with
  // the debug write-epoch detector (it is a writer for the sync policy),
  // while the async mechanism being tested here is exactly the part that
  // is exempt from that contract.
  std::atomic<bool> stop{false};
  std::thread maintenance([&] {
    long iteration = 1;
    while (!stop.load(std::memory_order_acquire)) {
      net->output_layer().maybe_rebuild(iteration++, nullptr);
      std::this_thread::yield();
    }
  });

  std::vector<std::future<Prediction>> futures;
  for (int round = 0; round < 20; ++round) {
    for (std::size_t i = 0; i < 25; ++i) {
      auto f = engine.submit(data.test[i].features, {.top_k = 3});
      ASSERT_TRUE(f.has_value());
      futures.push_back(std::move(*f));
    }
  }
  for (auto& f : futures) {
    const Prediction p = f.get();
    ASSERT_FALSE(p.labels.empty());
    for (Index label : p.labels) ASSERT_LT(label, data.train.label_dim());
  }
  stop.store(true, std::memory_order_release);
  maintenance.join();
  net->quiesce_maintenance();

  const ServeStats stats = engine.stats();
  EXPECT_EQ(stats.completed, futures.size());
  EXPECT_EQ(stats.errors, 0u);
  EXPECT_GT(net->output_layer().tables()->publish_count(), 0u);
}

TEST(InferenceEngine, BatchingDeadlineDispatchesPartialBatch) {
  const auto data = planted();
  auto store = std::make_shared<ModelStore>(trained_network(data, 20));
  ServeConfig cfg;
  cfg.num_workers = 1;
  cfg.max_batch = 64;        // far more than we submit
  cfg.max_wait_us = 20'000;  // 20ms window
  InferenceEngine engine(store, cfg);

  const auto t0 = std::chrono::steady_clock::now();
  auto f = engine.submit(data.test[0].features);
  ASSERT_TRUE(f.has_value());
  ASSERT_EQ(f->wait_for(5s), std::future_status::ready)
      << "deadline did not fire: a lone request must not wait for a full "
         "batch";
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_LT(elapsed, 4s);
  const ServeStats stats = engine.stats();
  EXPECT_EQ(stats.completed, 1u);
  EXPECT_EQ(stats.batches, 1u);
}

TEST(InferenceEngine, PausedQueueAccumulatesOneFullBatch) {
  const auto data = planted();
  auto store = std::make_shared<ModelStore>(trained_network(data, 20));
  ServeConfig cfg;
  cfg.num_workers = 1;
  cfg.max_batch = 8;
  cfg.max_wait_us = 500'000;  // generous: size, not deadline, closes it
  InferenceEngine engine(store, cfg);

  engine.pause();
  std::vector<std::future<Prediction>> futures;
  for (int i = 0; i < 8; ++i) {
    auto f = engine.submit(data.test[static_cast<std::size_t>(i)].features);
    ASSERT_TRUE(f.has_value());
    futures.push_back(std::move(*f));
  }
  EXPECT_EQ(engine.queue_depth(), 8u);
  engine.resume();
  for (auto& f : futures)
    ASSERT_EQ(f.wait_for(10s), std::future_status::ready);
  const ServeStats stats = engine.stats();
  EXPECT_EQ(stats.completed, 8u);
  EXPECT_EQ(stats.batches, 1u);  // one worker, all 8 already queued
  EXPECT_DOUBLE_EQ(stats.mean_batch_size, 8.0);
}

TEST(InferenceEngine, MixedTopKAndExactWithinOneMicroBatch) {
  // One micro-batch mixing top_k values and exact/sampled modes: the
  // engine dispatches whole (top_k, exact) groups through predict_batch,
  // and every request must still be answered with its own parameters.
  const auto data = planted();
  auto network = trained_network(data, 60);
  auto store = std::make_shared<ModelStore>(network);
  ServeConfig cfg;
  cfg.num_workers = 1;
  cfg.max_batch = 12;
  cfg.max_wait_us = 500'000;
  InferenceEngine engine(store, cfg);

  engine.pause();
  std::vector<std::future<Prediction>> futures;
  std::vector<int> ks;
  for (int i = 0; i < 12; ++i) {
    const int k = 1 + (i % 3);        // 1, 2, 3, 1, 2, ...
    const bool exact = (i % 2) == 0;  // alternate exact/sampled
    auto f = engine.submit(data.test[static_cast<std::size_t>(i)].features,
                           {.top_k = k, .exact = exact});
    ASSERT_TRUE(f.has_value());
    futures.push_back(std::move(*f));
    ks.push_back(k);
  }
  engine.resume();

  InferenceContext ctx(*network);
  for (std::size_t i = 0; i < futures.size(); ++i) {
    ASSERT_EQ(futures[i].wait_for(10s), std::future_status::ready) << i;
    const Prediction p = futures[i].get();
    EXPECT_LE(p.labels.size(), static_cast<std::size_t>(ks[i])) << i;
    if (i % 2 == 0) {
      // Exact requests are deterministic: must match a direct call.
      EXPECT_EQ(p.labels, network->predict_topk(data.test[i].features, ctx,
                                                ks[i], true))
          << i;
    } else {
      for (Index label : p.labels) EXPECT_LT(label, network->output_dim());
    }
  }
  const ServeStats stats = engine.stats();
  EXPECT_EQ(stats.completed, 12u);
  EXPECT_EQ(stats.errors, 0u);
  EXPECT_EQ(stats.batches, 1u);  // one micro-batch, several dispatch groups
}

TEST(InferenceEngine, ServesAnyBuilderStackThroughOnePath) {
  // The unified-API contract: a dense-only baseline and a 3-layer
  // multi-hashed stack — both straight from NetworkBuilder — serve through
  // the same engine, which dispatches micro-batches via predict_batch.
  const auto data = planted();
  HashFamilyConfig family;
  family.kind = HashFamilyKind::kSimhash;
  family.k = 4;
  family.l = 8;
  HashTable::Config table;
  table.range_pow = 8;

  auto dense_stack = NetworkBuilder(data.train.feature_dim())
                         .dense(16)
                         .dense(data.train.label_dim(), Activation::kSoftmax)
                         .max_batch(32)
                         .build_shared(2);
  auto hashed_stack = NetworkBuilder(data.train.feature_dim())
                          .dense(16)
                          .sampled(48, family, 32, Activation::kReLU)
                          .table(table)
                          .sampled(data.train.label_dim(), family, 20)
                          .table(table)
                          .max_batch(32)
                          .build_shared(2);
  for (auto& model :
       {std::shared_ptr<Network>(dense_stack), hashed_stack}) {
    TrainerConfig tc;
    tc.batch_size = 32;
    tc.num_threads = 2;
    Trainer trainer(*model, tc);
    trainer.train(data.train, 10);
    model->rebuild_all(&trainer.pool());
    auto store = std::make_shared<ModelStore>(
        std::shared_ptr<const Network>(model));
    ServeConfig cfg;
    cfg.num_workers = 2;
    cfg.max_batch = 8;
    cfg.exact = true;
    InferenceEngine engine(store, cfg);
    std::vector<std::future<Prediction>> futures;
    for (std::size_t i = 0; i < 16; ++i) {
      auto f = engine.submit(data.test[i].features, {.top_k = 3});
      ASSERT_TRUE(f.has_value());
      futures.push_back(std::move(*f));
    }
    InferenceContext ctx(*model);
    for (std::size_t i = 0; i < futures.size(); ++i) {
      const Prediction p = futures[i].get();
      EXPECT_EQ(p.labels,
                model->predict_topk(data.test[i].features, ctx, 3, true))
          << i;
    }
    engine.stop();
    EXPECT_EQ(engine.stats().errors, 0u);
  }
}

TEST(InferenceEngine, BackpressureRejectsWhenQueueFull) {
  const auto data = planted();
  auto store = std::make_shared<ModelStore>(trained_network(data, 20));
  ServeConfig cfg;
  cfg.num_workers = 1;
  cfg.queue_capacity = 4;
  cfg.max_batch = 4;
  cfg.max_wait_us = 1'000;
  InferenceEngine engine(store, cfg);

  engine.pause();  // hold workers so the queue fills deterministically
  std::vector<std::future<Prediction>> admitted;
  for (int i = 0; i < 4; ++i) {
    auto f = engine.submit(data.test[static_cast<std::size_t>(i)].features);
    ASSERT_TRUE(f.has_value()) << i;
    admitted.push_back(std::move(*f));
  }
  EXPECT_FALSE(engine.submit(data.test[4].features).has_value());
  EXPECT_FALSE(
      engine.submit_callback(data.test[5].features, [](Prediction) {}));
  EXPECT_EQ(engine.stats().rejected, 2u);
  engine.resume();
  for (auto& f : admitted)
    ASSERT_EQ(f.wait_for(10s), std::future_status::ready);
  EXPECT_EQ(engine.stats().completed, 4u);
}

TEST(InferenceEngine, RejectsOutOfRangeFeaturesAtAdmission) {
  const auto data = planted();
  auto network = trained_network(data, 20);
  auto store = std::make_shared<ModelStore>(network);
  ServeConfig cfg;
  cfg.num_workers = 1;
  cfg.max_wait_us = 100;
  InferenceEngine engine(store, cfg);
  SparseVector bad({network->input_dim() + 7}, {1.0f});
  EXPECT_THROW(engine.submit(bad), Error);
  EXPECT_THROW(engine.submit_callback(bad, [](Prediction) {}), Error);
  // The malformed request never reached a worker; the engine still serves.
  auto ok = engine.submit(data.test[0].features);
  ASSERT_TRUE(ok.has_value());
  EXPECT_LT(ok->get().labels[0], network->output_dim());
}

TEST(InferenceEngine, CallbackPathDeliversResults) {
  const auto data = planted();
  auto network = trained_network(data);
  auto store = std::make_shared<ModelStore>(network);
  ServeConfig cfg;
  cfg.num_workers = 2;
  cfg.max_wait_us = 100;
  cfg.exact = true;
  std::atomic<int> delivered{0};
  std::atomic<bool> all_valid{true};
  {
    InferenceEngine engine(store, cfg);
    const Index output_dim = network->output_dim();
    for (std::size_t i = 0; i < 20; ++i) {
      ASSERT_TRUE(engine.submit_callback(
          data.test[i].features, [&, output_dim](Prediction p) {
            if (p.labels.empty() || p.labels[0] >= output_dim)
              all_valid.store(false);
            delivered.fetch_add(1);
          }));
    }
  }  // destructor stops + drains
  EXPECT_EQ(delivered.load(), 20);
  EXPECT_TRUE(all_valid.load());
}

TEST(InferenceEngine, StopDrainsAllAdmittedRequests) {
  const auto data = planted();
  auto store = std::make_shared<ModelStore>(trained_network(data, 20));
  ServeConfig cfg;
  cfg.num_workers = 1;
  cfg.max_batch = 2;
  cfg.max_wait_us = 50'000;
  InferenceEngine engine(store, cfg);
  engine.pause();
  std::vector<std::future<Prediction>> futures;
  for (int i = 0; i < 6; ++i) {
    auto f = engine.submit(data.test[static_cast<std::size_t>(i)].features);
    ASSERT_TRUE(f.has_value()) << i;
    futures.push_back(std::move(*f));
  }
  engine.stop();  // resumes, closes admission, drains, joins
  for (auto& f : futures)
    ASSERT_EQ(f.wait_for(0s), std::future_status::ready);
  EXPECT_EQ(engine.stats().completed, 6u);
  EXPECT_FALSE(engine.submit(data.test[0].features).has_value());
}

TEST(InferenceEngine, HotSwapUnderLoadReturnsOnlyValidResults) {
  const auto data = planted();
  auto network = trained_network(data);
  auto store = std::make_shared<ModelStore>(network);
  const Index output_dim = network->output_dim();
  ServeConfig cfg;
  cfg.num_workers = 2;
  cfg.max_batch = 4;
  cfg.max_wait_us = 200;
  cfg.queue_capacity = 1 << 16;
  InferenceEngine engine(store, cfg);

  std::atomic<bool> running{true};
  std::atomic<std::uint64_t> ok{0}, bad{0};
  std::set<std::uint64_t> versions_seen;
  std::mutex versions_mutex;
  std::vector<std::thread> clients;
  for (int c = 0; c < 2; ++c) {
    clients.emplace_back([&, c] {
      std::size_t i = static_cast<std::size_t>(c);
      while (running.load()) {
        auto f =
            engine.submit(data.test[i % data.test.size()].features,
                          {.top_k = 3});
        ++i;
        if (!f.has_value()) continue;  // backpressure: retry
        Prediction p = f->get();
        const bool valid =
            !p.labels.empty() &&
            std::all_of(p.labels.begin(), p.labels.end(),
                        [&](Index l) { return l < output_dim; });
        (valid ? ok : bad).fetch_add(1);
        std::lock_guard<std::mutex> lock(versions_mutex);
        versions_seen.insert(p.snapshot_version);
      }
    });
  }
  // Publish three fresh snapshots while traffic flows.
  for (int swap = 0; swap < 3; ++swap) {
    std::this_thread::sleep_for(50ms);
    publish_clone(*store, *network, /*rebuild_threads=*/1);
  }
  std::this_thread::sleep_for(50ms);
  running.store(false);
  for (auto& t : clients) t.join();
  engine.stop();

  EXPECT_EQ(bad.load(), 0u);
  EXPECT_GT(ok.load(), 0u);
  EXPECT_EQ(store->version(), 4u);
  // Traffic spanned at least one swap boundary.
  EXPECT_GE(versions_seen.size(), 2u);
  EXPECT_GE(engine.stats().swaps_observed, 1u);
}

TEST(InferenceEngine, SwapPreservingWeightsPreservesExactResults) {
  // A snapshot built from the same weights must serve identical exact
  // predictions: the engine's results are checkpoint-stable.
  const auto data = planted();
  auto network = trained_network(data);
  auto store = std::make_shared<ModelStore>(network);
  ServeConfig cfg;
  cfg.num_workers = 1;
  cfg.max_wait_us = 100;
  cfg.exact = true;
  InferenceEngine engine(store, cfg);

  auto before = engine.submit(data.test[0].features, {.top_k = 5});
  ASSERT_TRUE(before.has_value());
  const std::vector<Index> labels_before = before->get().labels;
  publish_clone(*store, *network, 1);
  auto after = engine.submit(data.test[0].features, {.top_k = 5});
  ASSERT_TRUE(after.has_value());
  Prediction p = after->get();
  EXPECT_EQ(p.labels, labels_before);
  EXPECT_EQ(p.snapshot_version, 2u);
}

// ---- SLO-aware serving: deadlines, lanes, shedding ------------------------

TEST(InferenceEngine, PastDeadlineIsShedAtAdmissionWithTypedError) {
  const auto data = planted();
  auto store = std::make_shared<ModelStore>(trained_network(data, 20));
  ServeConfig cfg;
  cfg.num_workers = 1;
  InferenceEngine engine(store, cfg);

  ServeOptions opts;
  opts.deadline = std::chrono::steady_clock::now() - 1ms;  // already hopeless
  auto f = engine.submit(data.test[0].features, opts);
  ASSERT_TRUE(f.has_value());  // shed != backpressure: the future exists...
  ASSERT_EQ(f->wait_for(0s), std::future_status::ready);  // ...and never hangs
  ShedReason reason{};
  EXPECT_EQ(outcome_of(*f, &reason), Outcome::kShed);
  EXPECT_EQ(reason, ShedReason::kAdmission);

  // The callback flavor reports the shed as false and never calls back.
  std::atomic<int> called{0};
  EXPECT_FALSE(engine.submit_callback(
      data.test[1].features, [&](Prediction) { called.fetch_add(1); },
      opts));
  engine.stop();
  EXPECT_EQ(called.load(), 0);

  const ServeStats stats = engine.stats();
  EXPECT_EQ(stats.submitted, 0u);  // never admitted
  EXPECT_EQ(stats.rejected, 0u);   // and not backpressure either
  EXPECT_EQ(stats.errors, 0u);     // sheds are policy, not failure
  EXPECT_EQ(stats.lanes[lane_index(Priority::kDefault)].shed_admission, 2u);
  EXPECT_EQ(stats.shed_total, 2u);
}

TEST(InferenceEngine, EwmaAdmissionShedsWhenQueueWaitExceedsDeadline) {
  const auto data = planted();
  auto store = std::make_shared<ModelStore>(trained_network(data, 20));
  ServeConfig cfg;
  cfg.num_workers = 1;
  cfg.max_batch = 16;
  InferenceEngine engine(store, cfg);

  // Train the service-time EWMA on real traffic first.
  std::vector<std::future<Prediction>> warmup;
  for (int i = 0; i < 20; ++i) {
    auto f = engine.submit(data.test[static_cast<std::size_t>(i)].features);
    ASSERT_TRUE(f.has_value());
    warmup.push_back(std::move(*f));
  }
  for (auto& f : warmup) f.get();
  const double ewma = engine.stats().ewma_service_us;
  EXPECT_GT(ewma, 0.0);        // sanity: the estimate exists...
  EXPECT_LT(ewma, 10'000'000.0);  // ...and is not absurd (< 10s/request)

  // Stack up a backlog the deadline cannot possibly clear: with >= 1000
  // requests ahead at >= ewma us each, a 1ms budget is hopeless.
  engine.pause();
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(
        engine.submit(data.test[static_cast<std::size_t>(i % 100)].features)
            .has_value());
  }
  ServeOptions tight;
  tight.deadline = std::chrono::steady_clock::now() + 1ms;
  auto f = engine.submit(data.test[0].features, tight);
  ASSERT_TRUE(f.has_value());
  ASSERT_EQ(f->wait_for(0s), std::future_status::ready);
  ShedReason reason{};
  EXPECT_EQ(outcome_of(*f, &reason), Outcome::kShed);
  EXPECT_EQ(reason, ShedReason::kAdmission);
  engine.stop();  // drains the backlog
  const ServeStats stats = engine.stats();
  EXPECT_EQ(stats.completed, 1020u);
  EXPECT_EQ(stats.lanes[lane_index(Priority::kDefault)].shed_admission, 1u);
}

TEST(InferenceEngine, DeadlineExpiringInQueueIsShedAtPopTime) {
  const auto data = planted();
  auto store = std::make_shared<ModelStore>(trained_network(data, 20));
  ServeConfig cfg;
  cfg.num_workers = 1;
  InferenceEngine engine(store, cfg);

  engine.pause();  // hold the worker so the deadline expires *in the queue*
  ServeOptions opts;
  opts.deadline = std::chrono::steady_clock::now() + 5ms;
  auto f = engine.submit(data.test[0].features, opts);
  ASSERT_TRUE(f.has_value());
  EXPECT_NE(f->wait_for(0s), std::future_status::ready);  // admitted, queued
  std::this_thread::sleep_for(20ms);
  engine.resume();
  ASSERT_EQ(f->wait_for(5s), std::future_status::ready);
  ShedReason reason{};
  EXPECT_EQ(outcome_of(*f, &reason), Outcome::kShed);
  EXPECT_EQ(reason, ShedReason::kDeadlineExpired);
  engine.stop();
  const ServeStats stats = engine.stats();
  EXPECT_EQ(stats.submitted, 1u);  // it *was* admitted
  EXPECT_EQ(stats.completed, 0u);
  EXPECT_EQ(stats.errors, 0u);
  EXPECT_EQ(stats.lanes[lane_index(Priority::kDefault)].shed_expired, 1u);
  EXPECT_EQ(stats.deadline_misses, 0u);  // shed, not served late
}

TEST(InferenceEngine, StrictLaneOrderingUnderSaturatedQueue) {
  const auto data = planted();
  auto store = std::make_shared<ModelStore>(trained_network(data, 20));
  ServeConfig cfg;
  cfg.num_workers = 1;
  cfg.max_batch = 1;    // serve strictly one at a time...
  cfg.max_wait_us = 0;  // ...with no batching window
  InferenceEngine engine(store, cfg);

  std::mutex order_mutex;
  std::vector<Priority> order;
  auto record = [&](Priority p) {
    return [&, p](Prediction) {
      std::lock_guard<std::mutex> lock(order_mutex);
      order.push_back(p);
    };
  };
  engine.pause();
  // Enqueued worst-first; a saturated queue must still drain interactive >
  // default > batch.
  for (Priority p : {Priority::kBatch, Priority::kBatch, Priority::kDefault,
                     Priority::kDefault, Priority::kInteractive,
                     Priority::kInteractive}) {
    ServeOptions opts;
    opts.priority = p;
    ASSERT_TRUE(engine.submit_callback(
        data.test[order.size()].features, record(p), opts));
  }
  engine.resume();
  engine.stop();  // drains everything in lane order
  ASSERT_EQ(order.size(), 6u);
  EXPECT_EQ(order[0], Priority::kInteractive);
  EXPECT_EQ(order[1], Priority::kInteractive);
  EXPECT_EQ(order[2], Priority::kDefault);
  EXPECT_EQ(order[3], Priority::kDefault);
  EXPECT_EQ(order[4], Priority::kBatch);
  EXPECT_EQ(order[5], Priority::kBatch);
  const ServeStats stats = engine.stats();
  EXPECT_EQ(stats.lanes[lane_index(Priority::kInteractive)].completed, 2u);
  EXPECT_EQ(stats.lanes[lane_index(Priority::kBatch)].completed, 2u);
}

TEST(InferenceEngine, EvictedRequestResolvesWithTypedShedError) {
  const auto data = planted();
  auto store = std::make_shared<ModelStore>(trained_network(data, 20));
  ServeConfig cfg;
  cfg.num_workers = 1;
  cfg.queue_capacity = 2;
  InferenceEngine engine(store, cfg);

  engine.pause();
  ServeOptions batch_opts;
  batch_opts.priority = Priority::kBatch;
  auto victim1 = engine.submit(data.test[0].features, batch_opts);
  auto victim2 = engine.submit(data.test[1].features, batch_opts);
  ASSERT_TRUE(victim1.has_value());
  ASSERT_TRUE(victim2.has_value());
  ServeOptions urgent;
  urgent.priority = Priority::kInteractive;
  auto vip = engine.submit(data.test[2].features, urgent);
  ASSERT_TRUE(vip.has_value());
  // The youngest batch request was bumped and its future resolved at once.
  ASSERT_EQ(victim2->wait_for(0s), std::future_status::ready);
  ShedReason reason{};
  EXPECT_EQ(outcome_of(*victim2, &reason), Outcome::kShed);
  EXPECT_EQ(reason, ShedReason::kQueueEvicted);
  engine.stop();
  EXPECT_EQ(outcome_of(*victim1), Outcome::kServed);
  EXPECT_EQ(outcome_of(*vip), Outcome::kServed);
  const ServeStats stats = engine.stats();
  EXPECT_EQ(stats.submitted, 3u);
  EXPECT_EQ(stats.completed, 2u);
  EXPECT_EQ(stats.lanes[lane_index(Priority::kBatch)].shed_evicted, 1u);
  // Accounting identity after drain:
  EXPECT_EQ(stats.completed + stats.errors + stats.shed_total,
            stats.submitted);
}

TEST(InferenceEngine, ShedIsDistinguishableFromServingFailure) {
  const auto data = planted();
  auto network = trained_network(data, 20);
  auto store = std::make_shared<ModelStore>(network);
  ServeConfig cfg;
  cfg.num_workers = 1;
  InferenceEngine engine(store, cfg);

  // A shed future throws ShedError (which IS-A slide::Error)...
  ServeOptions hopeless;
  hopeless.deadline = std::chrono::steady_clock::now() - 1ms;
  auto shed_f = engine.submit(data.test[0].features, hopeless);
  ASSERT_TRUE(shed_f.has_value());
  EXPECT_EQ(outcome_of(*shed_f), Outcome::kShed);

  // ...while a serving failure throws a non-shed error. Force one by
  // hot-swapping to a narrower model between admission and service: the
  // worker's re-validation fails the request.
  engine.pause();
  auto doomed = engine.submit(data.test[0].features);
  ASSERT_TRUE(doomed.has_value());
  SyntheticConfig narrow_cfg;
  narrow_cfg.feature_dim = 10;  // narrower than the planted 300
  narrow_cfg.label_dim = 20;
  narrow_cfg.num_train = 50;
  narrow_cfg.num_test = 5;
  narrow_cfg.seed = 13;
  const auto narrow_data = make_synthetic_xc(narrow_cfg);
  store->publish(trained_network(narrow_data, 5));
  engine.resume();
  ASSERT_EQ(doomed->wait_for(10s), std::future_status::ready);
  EXPECT_EQ(outcome_of(*doomed), Outcome::kFailed);  // Error, not ShedError
  engine.stop();
  const ServeStats stats = engine.stats();
  EXPECT_EQ(stats.errors, 1u);
  EXPECT_EQ(stats.shed_total, 1u);
}

TEST(InferenceEngine, HotSwapUnderSheddingStressNeverHangsAFuture) {
  // The everything-at-once stress: tight deadlines, mixed lanes, a queue
  // small enough to evict, and snapshot publishes mid-flight. Every future
  // must resolve (served, shed, or failed — never hang), and the ledger
  // must balance.
  const auto data = planted();
  auto network = trained_network(data);
  auto store = std::make_shared<ModelStore>(network);
  ServeConfig cfg;
  cfg.num_workers = 2;
  cfg.max_batch = 4;
  cfg.queue_capacity = 32;
  InferenceEngine engine(store, cfg);

  std::atomic<std::uint64_t> served{0}, shed{0}, failed{0};
  std::atomic<bool> running{true};
  std::vector<std::thread> clients;
  for (int c = 0; c < 3; ++c) {
    clients.emplace_back([&, c] {
      std::size_t i = static_cast<std::size_t>(c);
      while (running.load()) {
        ServeOptions opts;
        opts.priority = static_cast<Priority>(i % kNumLanes);
        if (i % 2 == 0)
          opts.deadline = std::chrono::steady_clock::now() + 3ms;
        auto f = engine.submit(data.test[i % data.test.size()].features,
                               opts);
        ++i;
        if (!f.has_value()) continue;  // backpressure
        if (f->wait_for(10s) != std::future_status::ready) {
          failed.fetch_add(1000000);  // poison the count: a hang is fatal
          return;
        }
        switch (outcome_of(*f)) {
          case Outcome::kServed: served.fetch_add(1); break;
          case Outcome::kShed: shed.fetch_add(1); break;
          case Outcome::kFailed: failed.fetch_add(1); break;
        }
      }
    });
  }
  for (int swap = 0; swap < 3; ++swap) {
    std::this_thread::sleep_for(30ms);
    publish_clone(*store, *network, /*rebuild_threads=*/1);
  }
  std::this_thread::sleep_for(30ms);
  running.store(false);
  for (auto& t : clients) t.join();
  engine.stop();

  EXPECT_GT(served.load(), 0u);
  EXPECT_EQ(failed.load(), 0u);
  const ServeStats stats = engine.stats();
  // Admission sheds are not submitted; in-queue sheds are. Post-drain the
  // ledger balances exactly.
  std::uint64_t in_queue_sheds = 0;
  for (int lane = 0; lane < kNumLanes; ++lane)
    in_queue_sheds += stats.lanes[lane].shed_evicted +
                      stats.lanes[lane].shed_expired;
  EXPECT_EQ(stats.completed + stats.errors + in_queue_sheds,
            stats.submitted);
  EXPECT_EQ(served.load() + failed.load(), stats.completed + stats.errors);
}

#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
TEST(InferenceEngine, DeprecatedPositionalShimsMatchServeOptionsForm) {
  // The old positional overloads must stay behaviorally identical to the
  // ServeOptions form while they live out their deprecation window.
  const auto data = planted();
  auto store = std::make_shared<ModelStore>(trained_network(data, 60));
  ServeConfig cfg;
  cfg.num_workers = 1;
  cfg.exact = true;  // deterministic: equal inputs => equal outputs
  InferenceEngine engine(store, cfg);

  for (std::size_t i = 0; i < 5; ++i) {
    auto old_form = engine.submit(data.test[i].features, 4);
    auto new_form = engine.submit(data.test[i].features, {.top_k = 4});
    ASSERT_TRUE(old_form.has_value());
    ASSERT_TRUE(new_form.has_value());
    EXPECT_EQ(old_form->get().labels, new_form->get().labels) << i;
  }
  // Pagination through both forms.
  auto old_page = engine.submit(data.test[0].features, 3, std::nullopt, 3);
  auto new_page =
      engine.submit(data.test[0].features, {.top_k = 3, .page_offset = 3});
  ASSERT_TRUE(old_page.has_value());
  ASSERT_TRUE(new_page.has_value());
  EXPECT_EQ(old_page->get().labels, new_page->get().labels);
  // Callback shim.
  std::atomic<int> delivered{0};
  ASSERT_TRUE(engine.submit_callback(
      data.test[0].features, [&](Prediction) { delivered.fetch_add(1); },
      /*top_k=*/2));
  engine.stop();
  EXPECT_EQ(delivered.load(), 1);
  EXPECT_EQ(engine.stats().errors, 0u);
}
#pragma GCC diagnostic pop

#ifndef NDEBUG
TEST(NetworkWriteEpoch, MutatorsBumpAndPredictionsDoNot) {
  const auto data = planted();
  Network net(planted_config(data), 1);
  const std::uint64_t e0 = net.write_epoch();
  InferenceContext ctx(net.max_sampled_units());
  net.predict_top1(data.test[0].features, ctx, true);
  net.predict_topk(data.test[0].features, ctx, 3, true);
  EXPECT_EQ(net.write_epoch(), e0);  // readers leave the epoch alone
  EXPECT_EQ(net.writers_active(), 0);
  net.rebuild_all(nullptr);
  EXPECT_GT(net.write_epoch(), e0);
  EXPECT_EQ(net.writers_active(), 0);  // brackets are balanced
}

TEST(NetworkWriteEpoch, ReadInsideWriteBracketAsserts) {
  const auto data = planted();
  Network net(planted_config(data), 1);
  InferenceContext ctx(net.max_sampled_units());
  net.begin_write();
  EXPECT_EQ(net.writers_active(), 1);
  // SLIDE_ASSERT throws std::logic_error in debug builds.
  EXPECT_THROW(net.predict_top1(data.test[0].features, ctx, true),
               std::logic_error);
  net.end_write();
  EXPECT_EQ(net.writers_active(), 0);
  EXPECT_LT(net.predict_top1(data.test[0].features, ctx, true),
            net.output_dim());
}
#endif

}  // namespace
}  // namespace slide
