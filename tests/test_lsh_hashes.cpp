// Hash-family tests: the LSH property (collision probability increases with
// similarity) for every family, dense/sparse path agreement, incremental
// Simhash updates, DWTA densification, DOPH binarization.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>

#include "lsh/collision.h"
#include "lsh/doph.h"
#include "lsh/dwta.h"
#include "lsh/factory.h"
#include "lsh/simhash.h"
#include "lsh/wta.h"
#include "sys/rng.h"

namespace slide {
namespace {

std::vector<float> random_unit(Index dim, Rng& rng) {
  std::vector<float> v(dim);
  float norm = 0.0f;
  for (auto& x : v) {
    x = rng.normal();
    norm += x * x;
  }
  norm = std::sqrt(norm);
  for (auto& x : v) x /= norm;
  return v;
}

/// y = cos*x + sin*noise, unit-normalized: controls cosine similarity to x.
std::vector<float> perturb(const std::vector<float>& x, float cosine,
                           Rng& rng) {
  auto noise = random_unit(static_cast<Index>(x.size()), rng);
  const float s = std::sqrt(std::max(0.0f, 1.0f - cosine * cosine));
  std::vector<float> y(x.size());
  float norm = 0.0f;
  for (std::size_t i = 0; i < x.size(); ++i) {
    y[i] = cosine * x[i] + s * noise[i];
    norm += y[i] * y[i];
  }
  norm = std::sqrt(norm);
  for (auto& v : y) v /= norm;
  return y;
}

/// Fraction of per-table key matches between two inputs (empirical p^K).
template <typename Family>
double key_match_rate(const Family& family, const float* a, const float* b) {
  std::vector<std::uint32_t> ka(family.l()), kb(family.l());
  family.hash_dense(a, ka);
  family.hash_dense(b, kb);
  int match = 0;
  for (int t = 0; t < family.l(); ++t) match += ka[t] == kb[t] ? 1 : 0;
  return static_cast<double>(match) / family.l();
}

// ---------------------------------------------------------------------------
// Simhash
// ---------------------------------------------------------------------------

TEST(Simhash, IdenticalInputsAlwaysCollide) {
  Simhash h({.k = 4, .l = 20, .dim = 64, .density = 1.0 / 3.0, .seed = 1});
  Rng rng(2);
  const auto x = random_unit(64, rng);
  EXPECT_DOUBLE_EQ(key_match_rate(h, x.data(), x.data()), 1.0);
}

TEST(Simhash, CollisionRateIncreasesWithCosine) {
  Simhash h({.k = 2, .l = 200, .dim = 128, .density = 1.0 / 3.0, .seed = 3});
  Rng rng(4);
  double rate_low = 0.0, rate_mid = 0.0, rate_high = 0.0;
  const int trials = 20;
  for (int i = 0; i < trials; ++i) {
    const auto x = random_unit(128, rng);
    rate_low += key_match_rate(h, x.data(), perturb(x, 0.1f, rng).data());
    rate_mid += key_match_rate(h, x.data(), perturb(x, 0.6f, rng).data());
    rate_high += key_match_rate(h, x.data(), perturb(x, 0.95f, rng).data());
  }
  EXPECT_LT(rate_low, rate_mid);
  EXPECT_LT(rate_mid, rate_high);
}

TEST(Simhash, EmpiricalCollisionTracksTheory) {
  // For K=1 the per-table match rate should approximate
  // p = 1 - acos(cos)/pi (fingerprint mixing preserves equality).
  Simhash h({.k = 1, .l = 2000, .dim = 256, .density = 1.0, .seed = 5});
  Rng rng(6);
  for (float cosine : {0.3f, 0.7f, 0.9f}) {
    double rate = 0.0;
    const int trials = 10;
    for (int i = 0; i < trials; ++i) {
      const auto x = random_unit(256, rng);
      const auto y = perturb(x, cosine, rng);
      rate += key_match_rate(h, x.data(), y.data());
    }
    rate /= trials;
    EXPECT_NEAR(rate, simhash_collision_probability(cosine), 0.06)
        << "cosine=" << cosine;
  }
}

TEST(Simhash, SparseAndDensePathsAgree) {
  Simhash h({.k = 6, .l = 25, .dim = 300, .density = 1.0 / 3.0, .seed = 7});
  Rng rng(8);
  std::vector<Index> idx;
  std::vector<float> val;
  std::vector<float> dense(300, 0.0f);
  for (int i = 0; i < 20; ++i) {
    const Index d = rng.uniform(300);
    if (dense[d] != 0.0f) continue;
    dense[d] = rng.normal();
    idx.push_back(d);
    val.push_back(dense[d]);
  }
  std::vector<std::uint32_t> kd(h.l()), ks(h.l());
  h.hash_dense(dense.data(), kd);
  h.hash_sparse(idx.data(), val.data(), idx.size(), ks);
  EXPECT_EQ(kd, ks);
}

TEST(Simhash, IncrementalProjectionUpdateMatchesRecompute) {
  Simhash h({.k = 5, .l = 10, .dim = 64, .density = 1.0 / 3.0, .seed = 9});
  Rng rng(10);
  auto x = random_unit(64, rng);
  std::vector<float> dots(static_cast<std::size_t>(h.num_projections()));
  h.project_dense(x.data(), dots.data());

  // Apply 7 coordinate deltas through the incremental path.
  for (int step = 0; step < 7; ++step) {
    const Index d = rng.uniform(64);
    const float delta = rng.normal() * 0.1f;
    x[d] += delta;
    h.update_projections(d, delta, dots.data());
  }
  std::vector<float> fresh(dots.size());
  h.project_dense(x.data(), fresh.data());
  for (std::size_t p = 0; p < dots.size(); ++p)
    ASSERT_NEAR(dots[p], fresh[p], 1e-4f) << p;

  std::vector<std::uint32_t> ka(h.l()), kb(h.l());
  h.keys_from_projections(dots.data(), ka);
  h.keys_from_projections(fresh.data(), kb);
  EXPECT_EQ(ka, kb);
}

TEST(Simhash, ProjectionsAreSparseAtRequestedDensity) {
  Simhash h({.k = 4, .l = 10, .dim = 900, .density = 1.0 / 3.0, .seed = 11});
  double total = 0.0;
  for (int p = 0; p < h.num_projections(); ++p)
    total += static_cast<double>(h.projection_indices(p).size());
  const double avg = total / h.num_projections();
  EXPECT_NEAR(avg / 900.0, 1.0 / 3.0, 0.02);
}

TEST(Simhash, RejectsBadConfig) {
  EXPECT_THROW(Simhash({.k = 0, .l = 10, .dim = 10}), Error);
  EXPECT_THROW(Simhash({.k = 4, .l = 0, .dim = 10}), Error);
  EXPECT_THROW(Simhash({.k = 4, .l = 10, .dim = 0}), Error);
  EXPECT_THROW(Simhash({.k = 4, .l = 10, .dim = 10, .density = 0.0}), Error);
}

// ---------------------------------------------------------------------------
// WTA
// ---------------------------------------------------------------------------

TEST(Wta, DeterministicAndInvariantToPositiveScaling) {
  WtaHash h({.k = 4, .l = 10, .dim = 64, .bin_size = 8, .seed = 12});
  Rng rng(13);
  const auto x = random_unit(64, rng);
  auto scaled = x;
  for (auto& v : scaled) v *= 7.5f;  // WTA depends on ranks only
  std::vector<std::uint32_t> ka(h.l()), kb(h.l());
  h.hash_dense(x.data(), ka);
  h.hash_dense(scaled.data(), kb);
  EXPECT_EQ(ka, kb);
}

TEST(Wta, CodesAreWithinBinRange) {
  WtaHash h({.k = 3, .l = 7, .dim = 40, .bin_size = 5, .seed = 14});
  Rng rng(15);
  const auto x = random_unit(40, rng);
  std::vector<std::uint32_t> codes(static_cast<std::size_t>(h.k() * h.l()));
  h.codes_dense(x.data(), codes.data());
  for (auto c : codes) EXPECT_LT(c, 5u);
}

TEST(Wta, RankSimilarInputsCollideMore) {
  WtaHash h({.k = 2, .l = 100, .dim = 128, .bin_size = 8, .seed = 16});
  Rng rng(17);
  double near = 0.0, far = 0.0;
  for (int i = 0; i < 10; ++i) {
    const auto x = random_unit(128, rng);
    near += key_match_rate(h, x.data(), perturb(x, 0.95f, rng).data());
    far += key_match_rate(h, x.data(), perturb(x, 0.05f, rng).data());
  }
  EXPECT_GT(near, far);
}

TEST(Wta, MemoryOptimizedPermutationCount) {
  // Storage must be O(K*L*m), i.e. ceil(K*L/(d/m)) permutations.
  WtaHash h({.k = 6, .l = 50, .dim = 128, .bin_size = 8, .seed = 18});
  EXPECT_EQ(h.num_permutations(), (6 * 50 + (128 / 8) - 1) / (128 / 8));
}

// ---------------------------------------------------------------------------
// DWTA
// ---------------------------------------------------------------------------

TEST(Dwta, SparseMatchesDenseOnSameVector) {
  DwtaHash h({.k = 4, .l = 20, .dim = 200, .bin_size = 8, .seed = 19});
  Rng rng(20);
  std::vector<float> dense(200, 0.0f);
  std::vector<Index> idx;
  std::vector<float> val;
  for (int i = 0; i < 200; ++i) {
    dense[static_cast<std::size_t>(i)] = rng.normal();
    idx.push_back(static_cast<Index>(i));
    val.push_back(dense[static_cast<std::size_t>(i)]);
  }
  std::vector<std::uint32_t> kd(h.l()), ks(h.l());
  h.hash_dense(dense.data(), kd);
  h.hash_sparse(idx.data(), val.data(), idx.size(), ks);
  EXPECT_EQ(kd, ks);
}

TEST(Dwta, DensifiesEmptyBinsForVerySparseInput) {
  DwtaHash h({.k = 6, .l = 30, .dim = 10'000, .bin_size = 8, .seed = 21});
  // 5 nonzeros in 10'000 dims: nearly all bins must be empty pre-repair.
  std::vector<Index> idx = {3, 777, 2'000, 6'000, 9'999};
  std::vector<float> val = {1.0f, 0.5f, 2.0f, 0.1f, 0.7f};
  std::vector<std::uint32_t> codes(static_cast<std::size_t>(h.k() * h.l()));
  const int empty = h.codes_sparse(idx.data(), val.data(), idx.size(),
                                   codes.data());
  EXPECT_GT(empty, h.k() * h.l() / 2);
  // Despite emptiness, keys must be deterministic and complete.
  std::vector<std::uint32_t> k1(h.l()), k2(h.l());
  h.hash_sparse(idx.data(), val.data(), idx.size(), k1);
  h.hash_sparse(idx.data(), val.data(), idx.size(), k2);
  EXPECT_EQ(k1, k2);
}

TEST(Dwta, OverlappingSparseSupportsCollideMore) {
  DwtaHash h({.k = 2, .l = 100, .dim = 5'000, .bin_size = 8, .seed = 22});
  Rng rng(23);
  auto make_sparse = [&](const std::vector<Index>& base, int extra) {
    std::vector<Index> idx = base;
    std::vector<float> val;
    for (int i = 0; i < extra; ++i) idx.push_back(rng.uniform(5'000));
    std::sort(idx.begin(), idx.end());
    idx.erase(std::unique(idx.begin(), idx.end()), idx.end());
    for (std::size_t i = 0; i < idx.size(); ++i)
      val.push_back(0.5f + 0.1f * static_cast<float>(idx[i] % 7));
    return std::pair(idx, val);
  };
  std::vector<Index> base;
  for (int i = 0; i < 40; ++i) base.push_back(rng.uniform(5'000));

  double shared_rate = 0.0, disjoint_rate = 0.0;
  for (int trial = 0; trial < 10; ++trial) {
    auto [ia, va] = make_sparse(base, 5);
    auto [ib, vb] = make_sparse(base, 5);  // shares the 40 base indices
    std::vector<Index> other;
    for (int i = 0; i < 40; ++i) other.push_back(rng.uniform(5'000));
    auto [ic, vc] = make_sparse(other, 5);
    std::vector<std::uint32_t> ka(h.l()), kb(h.l()), kc(h.l());
    h.hash_sparse(ia.data(), va.data(), ia.size(), ka);
    h.hash_sparse(ib.data(), vb.data(), ib.size(), kb);
    h.hash_sparse(ic.data(), vc.data(), ic.size(), kc);
    int ab = 0, ac = 0;
    for (int t = 0; t < h.l(); ++t) {
      ab += ka[t] == kb[t] ? 1 : 0;
      ac += ka[t] == kc[t] ? 1 : 0;
    }
    shared_rate += ab;
    disjoint_rate += ac;
  }
  EXPECT_GT(shared_rate, disjoint_rate);
}

// ---------------------------------------------------------------------------
// DOPH
// ---------------------------------------------------------------------------

TEST(Doph, IdenticalSetsProduceIdenticalKeys) {
  DophHash h({.k = 3, .l = 20, .dim = 1'000, .binarize_top_k = 16,
              .seed = 24});
  std::vector<Index> set = {1, 50, 200, 999};
  std::vector<std::uint32_t> k1(h.l()), k2(h.l());
  h.hash_set(set, k1);
  h.hash_set(set, k2);
  EXPECT_EQ(k1, k2);
}

TEST(Doph, JaccardSimilarSetsCollideMore) {
  DophHash h({.k = 1, .l = 400, .dim = 10'000, .binarize_top_k = 64,
              .seed = 25});
  Rng rng(26);
  std::vector<Index> base;
  for (int i = 0; i < 60; ++i) base.push_back(rng.uniform(10'000));
  std::sort(base.begin(), base.end());
  base.erase(std::unique(base.begin(), base.end()), base.end());

  auto mutate = [&](int replace) {
    std::vector<Index> s = base;
    for (int i = 0; i < replace && !s.empty(); ++i)
      s[rng.uniform(static_cast<std::uint32_t>(s.size()))] =
          rng.uniform(10'000);
    std::sort(s.begin(), s.end());
    s.erase(std::unique(s.begin(), s.end()), s.end());
    return s;
  };
  std::vector<std::uint32_t> kb(h.l()), knear(h.l()), kfar(h.l());
  h.hash_set(base, kb);
  h.hash_set(mutate(5), knear);
  h.hash_set(mutate(50), kfar);
  int near = 0, far = 0;
  for (int t = 0; t < h.l(); ++t) {
    near += kb[t] == knear[t] ? 1 : 0;
    far += kb[t] == kfar[t] ? 1 : 0;
  }
  EXPECT_GT(near, far);
}

TEST(Doph, BinarizeSelectsTopKIndices) {
  DophHash h({.k = 2, .l = 4, .dim = 10, .binarize_top_k = 3, .seed = 27});
  const std::vector<float> x = {0.1f, 5.0f, 0.2f, 4.0f, 0.0f,
                                3.0f, 0.3f, 0.0f, 0.1f, 0.2f};
  const auto set = h.binarize_dense(x.data());
  EXPECT_EQ(set, (std::vector<Index>{1, 3, 5}));
}

TEST(Doph, SparseInputUsesSupportAsSet) {
  DophHash h({.k = 2, .l = 30, .dim = 1'000, .binarize_top_k = 32,
              .seed = 28});
  std::vector<Index> idx = {5, 100, 900};
  std::vector<float> val = {1.0f, 2.0f, 3.0f};
  std::vector<std::uint32_t> ks(h.l()), kset(h.l());
  h.hash_sparse(idx.data(), val.data(), idx.size(), ks);
  h.hash_set(idx, kset);
  EXPECT_EQ(ks, kset);
}

// ---------------------------------------------------------------------------
// Factory
// ---------------------------------------------------------------------------

TEST(Factory, BuildsEveryKind) {
  for (auto kind : {HashFamilyKind::kSimhash, HashFamilyKind::kWta,
                    HashFamilyKind::kDwta, HashFamilyKind::kDoph}) {
    HashFamilyConfig cfg;
    cfg.kind = kind;
    cfg.k = 3;
    cfg.l = 5;
    cfg.dim = 64;
    const auto family = make_hash_family(cfg);
    ASSERT_NE(family, nullptr);
    EXPECT_EQ(family->k(), 3);
    EXPECT_EQ(family->l(), 5);
    EXPECT_EQ(family->dim(), 64u);
    EXPECT_EQ(family->name(), to_string(kind));
  }
}

}  // namespace
}  // namespace slide
