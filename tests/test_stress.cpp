// Stress and extended property tests: concurrency hammering of the shared
// structures, statistical LSH laws (match rate vs p^K, DOPH vs Jaccard),
// round-trip fuzzing of the XC format, and checkpoint-resume training.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <set>
#include <sstream>

#include "core/serialize.h"
#include "core/trainer.h"
#include "data/synthetic.h"
#include "data/xc_reader.h"
#include "lsh/collision.h"
#include "lsh/doph.h"
#include "lsh/simhash.h"
#include "lsh/table_group.h"
#include "metrics/metrics.h"

namespace slide {
namespace {

// ---------------------------------------------------------------------------
// Concurrency stress
// ---------------------------------------------------------------------------

TEST(Stress, ConcurrentHashTableInsertsNeverCorruptCounts) {
  HashTable table({.range_pow = 6, .bucket_size = 16});
  ThreadPool pool(4);
  constexpr int kPerThread = 20'000;
  pool.run_on_all([&](int tid) {
    Rng rng(static_cast<std::uint64_t>(tid) + 1);
    for (int i = 0; i < kPerThread; ++i) {
      table.insert(rng(), static_cast<Index>(i), rng);
    }
  });
  // Bucket sizes stay within capacity and total equals buckets' clamps.
  std::size_t total = 0;
  for (std::uint32_t key = 0; key < 64; ++key) {
    // probe distinct buckets via distinct high bits
    const auto bucket = table.bucket(key << 26);
    EXPECT_LE(bucket.size(), 16u);
    total += bucket.size();
  }
  EXPECT_GT(table.total_stored(), 0u);
  EXPECT_LE(table.total_stored(), 64u * 16u);
}

TEST(Stress, ParallelRebuildsBetweenTrainingStepsStayConsistent) {
  SyntheticConfig dcfg;
  dcfg.feature_dim = 300;
  dcfg.label_dim = 80;
  dcfg.num_train = 300;
  dcfg.num_test = 50;
  const auto data = make_synthetic_xc(dcfg);
  HashFamilyConfig family;
  family.kind = HashFamilyKind::kSimhash;
  family.k = 4;
  family.l = 12;
  NetworkConfig cfg = make_paper_network(300, 80, family, 20, 8);
  cfg.max_batch_size = 32;
  cfg.layers[0].table.range_pow = 8;
  cfg.layers[0].rebuild.initial_period = 2;  // rebuild nearly every step
  cfg.layers[0].rebuild.decay = 0.0;
  Network net(cfg, 4);
  TrainerConfig tc;
  tc.batch_size = 32;
  tc.num_threads = 4;
  tc.learning_rate = 5e-3f;
  Trainer trainer(net, tc);
  trainer.train(data.train, 60);  // would crash/hang on rebuild races
  EXPECT_GE(net.output_layer().rebuild_count(), 25);
  const double acc =
      evaluate_p_at_1(net, data.test, trainer.pool(), {.exact = true});
  EXPECT_GT(acc, 0.2);
}

TEST(Stress, ManySmallParallelLoopsDoNotDeadlock) {
  ThreadPool pool(4);
  std::atomic<long> total{0};
  for (int round = 0; round < 2'000; ++round) {
    pool.parallel_for(3, [&](std::size_t, int) {
      total.fetch_add(1, std::memory_order_relaxed);
    });
  }
  EXPECT_EQ(total.load(), 6'000);
}

// ---------------------------------------------------------------------------
// Statistical LSH laws
// ---------------------------------------------------------------------------

std::vector<float> random_unit(Index dim, Rng& rng) {
  std::vector<float> v(dim);
  float norm = 0.0f;
  for (auto& x : v) {
    x = rng.normal();
    norm += x * x;
  }
  norm = std::sqrt(norm);
  for (auto& x : v) x /= norm;
  return v;
}

class SimhashKLaw : public ::testing::TestWithParam<int> {};

TEST_P(SimhashKLaw, TableMatchRateApproximatesPToTheK) {
  // For fixed cosine similarity, the per-table key match rate must track
  // p^K with p = 1 - acos(cos)/pi (paper §2 meta-hash argument).
  const int k = GetParam();
  const double cosine = 0.8;
  Simhash h({.k = k, .l = 600, .dim = 256, .density = 1.0, .seed = 42});
  Rng rng(static_cast<std::uint64_t>(k));
  double rate = 0.0;
  const int trials = 12;
  for (int t = 0; t < trials; ++t) {
    const auto x = random_unit(256, rng);
    auto noise = random_unit(256, rng);
    std::vector<float> y(256);
    const float s = std::sqrt(1.0f - static_cast<float>(cosine * cosine));
    for (int d = 0; d < 256; ++d)
      y[static_cast<std::size_t>(d)] =
          static_cast<float>(cosine) * x[static_cast<std::size_t>(d)] +
          s * noise[static_cast<std::size_t>(d)];
    std::vector<std::uint32_t> ka(h.l()), kb(h.l());
    h.hash_dense(x.data(), ka);
    h.hash_dense(y.data(), kb);
    int match = 0;
    for (int i = 0; i < h.l(); ++i) match += ka[i] == kb[i] ? 1 : 0;
    rate += static_cast<double>(match) / h.l();
  }
  rate /= trials;
  const double expected =
      meta_hash_probability(simhash_collision_probability(cosine), k);
  EXPECT_NEAR(rate, expected, 0.05) << "K=" << k;
}

INSTANTIATE_TEST_SUITE_P(Ks, SimhashKLaw, ::testing::Values(1, 2, 4, 6, 9));

TEST(DophLaw, MatchRateTracksJaccardSimilarity) {
  // One-bin DOPH codes are minwise hashes: Pr[match] ~ Jaccard(A, B).
  DophHash h({.k = 1, .l = 1'000, .dim = 50'000, .binarize_top_k = 512,
              .seed = 77});
  Rng rng(78);
  for (double target_jaccard : {0.33, 0.6, 0.82}) {
    // Build two sets with the desired overlap: shared core + disjoint tails.
    const int total = 300;
    const int shared = static_cast<int>(
        std::lround(total * 2 * target_jaccard / (1 + target_jaccard)));
    std::set<Index> a_set, b_set;
    while (static_cast<int>(a_set.size()) < shared) {
      const Index e = rng.uniform(50'000);
      a_set.insert(e);
      b_set.insert(e);
    }
    while (static_cast<int>(a_set.size()) < total)
      a_set.insert(rng.uniform(50'000));
    while (static_cast<int>(b_set.size()) < total)
      b_set.insert(rng.uniform(50'000));
    std::vector<Index> a(a_set.begin(), a_set.end());
    std::vector<Index> b(b_set.begin(), b_set.end());

    // True Jaccard of the realized sets.
    std::vector<Index> inter;
    std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                          std::back_inserter(inter));
    const double jaccard =
        static_cast<double>(inter.size()) /
        static_cast<double>(a.size() + b.size() - inter.size());

    std::vector<std::uint32_t> ka(h.l()), kb(h.l());
    h.hash_set(a, ka);
    h.hash_set(b, kb);
    int match = 0;
    for (int i = 0; i < h.l(); ++i) match += ka[i] == kb[i] ? 1 : 0;
    const double rate = static_cast<double>(match) / h.l();
    EXPECT_NEAR(rate, jaccard, 0.08) << "target=" << target_jaccard;
  }
}

// ---------------------------------------------------------------------------
// XC round-trip fuzz (parameterized over dataset shapes)
// ---------------------------------------------------------------------------

struct XcShape {
  Index features;
  Index labels;
  std::size_t samples;
};

class XcRoundTrip : public ::testing::TestWithParam<XcShape> {};

TEST_P(XcRoundTrip, RandomDatasetSurvivesWriteRead) {
  const auto [features, labels, samples] = GetParam();
  Rng rng(features * 31 + labels);
  Dataset d(features, labels);
  for (std::size_t i = 0; i < samples; ++i) {
    Sample s;
    const int nnz = 1 + static_cast<int>(rng.uniform(12));
    for (int j = 0; j < nnz; ++j)
      s.features.push_back(rng.uniform(features),
                           rng.uniform_float() * 4.0f - 2.0f);
    s.features.compact();
    const int nlab = static_cast<int>(rng.uniform(4));  // may be zero
    for (int j = 0; j < nlab; ++j) s.labels.push_back(rng.uniform(labels));
    d.add(std::move(s));
  }
  std::stringstream buffer;
  write_xc(buffer, d);
  const Dataset back = read_xc(buffer, /*l2_normalize=*/false);
  ASSERT_EQ(back.size(), d.size());
  for (std::size_t i = 0; i < d.size(); ++i) {
    ASSERT_EQ(back[i].labels, d[i].labels) << i;
    ASSERT_EQ(back[i].features.nnz(), d[i].features.nnz()) << i;
    for (std::size_t j = 0; j < d[i].features.nnz(); ++j) {
      ASSERT_EQ(back[i].features.indices()[j], d[i].features.indices()[j]);
      ASSERT_NEAR(back[i].features.values()[j], d[i].features.values()[j],
                  std::fabs(d[i].features.values()[j]) * 1e-5f + 1e-6f);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, XcRoundTrip,
                         ::testing::Values(XcShape{10, 5, 20},
                                           XcShape{1'000, 200, 50},
                                           XcShape{100'000, 50'000, 30}));

// ---------------------------------------------------------------------------
// Checkpoint-resume training
// ---------------------------------------------------------------------------

TEST(Stress, TrainingResumesFromCheckpoint) {
  SyntheticConfig dcfg;
  dcfg.feature_dim = 300;
  dcfg.label_dim = 60;
  dcfg.num_train = 400;
  dcfg.num_test = 100;
  dcfg.seed = 17;
  const auto data = make_synthetic_xc(dcfg);
  HashFamilyConfig family;
  family.kind = HashFamilyKind::kSimhash;
  family.k = 4;
  family.l = 10;
  NetworkConfig cfg = make_paper_network(300, 60, family, 16, 8);
  cfg.max_batch_size = 16;
  cfg.layers[0].table.range_pow = 8;

  Network first(cfg, 2);
  TrainerConfig tc;
  tc.batch_size = 16;
  tc.num_threads = 2;
  tc.learning_rate = 5e-3f;
  {
    Trainer trainer(first, tc);
    trainer.train(data.train, 60);
  }
  std::stringstream checkpoint;
  save_weights(first, checkpoint);
  ThreadPool eval_pool(2);
  const double mid = evaluate_p_at_1(first, data.test, eval_pool,
                                     {.exact = true});

  cfg.seed = 4'242;  // fresh init, then restore
  Network resumed(cfg, 2);
  load_weights(resumed, checkpoint);
  Trainer trainer(resumed, tc);
  trainer.train(data.train, 120);
  const double after = evaluate_p_at_1(resumed, data.test, trainer.pool(),
                                       {.exact = true});
  EXPECT_GT(after, mid - 0.05);  // training continued productively
}

}  // namespace
}  // namespace slide
