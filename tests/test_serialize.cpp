// Checkpointing tests: round-trip fidelity for both network kinds,
// architecture validation, corruption rejection, and table rebuild after
// load.
#include <gtest/gtest.h>

#include <cstring>
#include <sstream>

#include "core/serialize.h"
#include "core/trainer.h"
#include "data/synthetic.h"
#include "metrics/metrics.h"

namespace slide {
namespace {

SyntheticDataset tiny_data() {
  SyntheticConfig cfg;
  cfg.feature_dim = 300;
  cfg.label_dim = 60;
  cfg.num_train = 400;
  cfg.num_test = 100;
  cfg.features_per_label = 10;
  cfg.active_per_label = 6;
  cfg.seed = 91;
  return make_synthetic_xc(cfg);
}

NetworkConfig net_config(const SyntheticDataset& data,
                         std::uint64_t seed = 123) {
  HashFamilyConfig family;
  family.kind = HashFamilyKind::kSimhash;
  family.k = 4;
  family.l = 10;
  NetworkConfig cfg = make_paper_network(data.train.feature_dim(),
                                         data.train.label_dim(), family, 16,
                                         8);
  cfg.max_batch_size = 16;
  cfg.layers[0].table.range_pow = 8;
  cfg.seed = seed;
  return cfg;
}

void train_a_bit(Network& net, const Dataset& train, int iters = 40) {
  TrainerConfig tc;
  tc.batch_size = 16;
  tc.num_threads = 2;
  tc.learning_rate = 5e-3f;
  Trainer trainer(net, tc);
  trainer.train(train, iters);
}

TEST(Serialize, NetworkRoundTripPreservesAllParameters) {
  const auto data = tiny_data();
  Network trained(net_config(data), 2);
  train_a_bit(trained, data.train);

  std::stringstream buffer;
  save_weights(trained, buffer);

  // Different seed -> different initial weights; load must overwrite all.
  Network restored(net_config(data, 999), 2);
  load_weights(restored, buffer);

  const auto tw = trained.embedding().weights_span();
  const auto rw = restored.embedding().weights_span();
  ASSERT_EQ(tw.size(), rw.size());
  for (std::size_t i = 0; i < tw.size(); ++i) ASSERT_EQ(tw[i], rw[i]);
  const auto tow = trained.output_layer().weights_span();
  const auto row = restored.output_layer().weights_span();
  for (std::size_t i = 0; i < tow.size(); ++i) ASSERT_EQ(tow[i], row[i]);
  for (Index u = 0; u < trained.output_layer().units(); ++u)
    ASSERT_EQ(trained.output_layer().bias(u), restored.output_layer().bias(u));
}

TEST(Serialize, RestoredNetworkPredictsIdentically) {
  const auto data = tiny_data();
  Network trained(net_config(data), 2);
  train_a_bit(trained, data.train);
  std::stringstream buffer;
  save_weights(trained, buffer);
  Network restored(net_config(data, 999), 2);
  load_weights(restored, buffer);

  InferenceContext ca(trained.max_sampled_units());
  InferenceContext cb(restored.max_sampled_units());
  for (std::size_t i = 0; i < 50; ++i) {
    EXPECT_EQ(trained.predict_top1(data.test[i].features, ca, true),
              restored.predict_top1(data.test[i].features, cb, true))
        << i;
  }
  // Sampled inference works too (tables were rebuilt on load).
  ThreadPool pool(2);
  const double acc = evaluate_p_at_1(restored, data.test, pool, {});
  EXPECT_GE(acc, 0.0);
}

TEST(Serialize, FileRoundTrip) {
  const auto data = tiny_data();
  Network trained(net_config(data), 2);
  train_a_bit(trained, data.train, 10);
  const std::string path = "/tmp/slide_test_checkpoint.bin";
  save_weights_file(trained, path);
  Network restored(net_config(data, 7), 2);
  ThreadPool pool(2);
  load_weights_file(restored, path, &pool);
  EXPECT_EQ(trained.embedding().weights_span()[0],
            restored.embedding().weights_span()[0]);
  std::remove(path.c_str());
}

TEST(Serialize, RejectsArchitectureMismatch) {
  const auto data = tiny_data();
  Network trained(net_config(data), 2);
  std::stringstream buffer;
  save_weights(trained, buffer);

  // Wider hidden layer.
  NetworkConfig other = net_config(data);
  other.hidden_units = 16;
  Network wrong(other, 2);
  EXPECT_THROW(load_weights(wrong, buffer), Error);
}

TEST(Serialize, RejectsGarbageAndTruncation) {
  const auto data = tiny_data();
  Network net(net_config(data), 2);
  {
    std::stringstream buffer("this is not a checkpoint at all");
    EXPECT_THROW(load_weights(net, buffer), Error);
  }
  {
    std::stringstream buffer;
    save_weights(net, buffer);
    std::string bytes = buffer.str();
    bytes.resize(bytes.size() / 2);  // truncate
    std::stringstream half(bytes);
    EXPECT_THROW(load_weights(net, half), Error);
  }
}

TEST(Serialize, WritesVersion5WithPrecisionTagAndRejectsFutureVersions) {
  const auto data = tiny_data();
  Network net(net_config(data), 2);
  std::stringstream buffer;
  save_weights(net, buffer);
  std::string bytes = buffer.str();

  // Header words: magic, version, kind, input_dim, hidden, num_layers, tag.
  std::uint32_t version = 0, tag = 0;
  std::memcpy(&version, bytes.data() + 4, 4);
  std::memcpy(&tag, bytes.data() + 24, 4);
  EXPECT_EQ(version, 5u);
  EXPECT_EQ(tag, static_cast<std::uint32_t>(Precision::kFP32));

  // A version from the future must be rejected, not misparsed.
  const std::uint32_t future = 99;
  std::memcpy(bytes.data() + 4, &future, 4);
  std::stringstream tampered(bytes);
  EXPECT_THROW(load_weights(net, tampered), Error);
}

TEST(Serialize, DenseNetworkRoundTrip) {
  const auto data = tiny_data();
  DenseNetwork::Config cfg;
  cfg.input_dim = data.train.feature_dim();
  cfg.hidden_units = 8;
  cfg.output_units = data.train.label_dim();
  cfg.max_batch_size = 16;
  DenseNetwork a(cfg, 2);
  ThreadPool pool(2);
  Batcher batcher(data.train, 16, true, 5);
  for (int i = 0; i < 20; ++i) a.step(data.train, batcher.next(), 5e-3f, pool);

  std::stringstream buffer;
  save_weights(a, buffer);
  cfg.seed = 777;
  DenseNetwork b(cfg, 2);
  load_weights(b, buffer);

  std::vector<float> sa, sb;
  for (std::size_t i = 0; i < 30; ++i) {
    EXPECT_EQ(a.predict_top1(data.test[i].features, sa),
              b.predict_top1(data.test[i].features, sb));
  }
}

TEST(Serialize, KindMismatchRejected) {
  const auto data = tiny_data();
  Network slide_net(net_config(data), 2);
  std::stringstream buffer;
  save_weights(slide_net, buffer);

  DenseNetwork::Config cfg;
  cfg.input_dim = data.train.feature_dim();
  cfg.hidden_units = 8;
  cfg.output_units = data.train.label_dim();
  cfg.max_batch_size = 4;
  DenseNetwork dense(cfg, 1);
  EXPECT_THROW(load_weights(dense, buffer), Error);
}

TEST(Serialize, IncrementalMemoInvalidatedOnLoad) {
  // A network with incremental rehash must re-project after a load; the
  // sampled predictions of two identically-loaded networks must agree.
  const auto data = tiny_data();
  NetworkConfig cfg = net_config(data);
  cfg.layers[0].incremental_rehash = true;
  Network trained(cfg, 2);
  train_a_bit(trained, data.train, 20);
  std::stringstream buffer;
  save_weights(trained, buffer);

  Network restored(cfg, 2);
  load_weights(restored, buffer);
  InferenceContext ca(trained.max_sampled_units(), 5);
  InferenceContext cb(restored.max_sampled_units(), 5);
  for (std::size_t i = 0; i < 20; ++i) {
    EXPECT_EQ(trained.predict_top1(data.test[i].features, ca, true),
              restored.predict_top1(data.test[i].features, cb, true));
  }
}

}  // namespace
}  // namespace slide
