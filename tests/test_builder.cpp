// NetworkBuilder + unified-stack tests: fluent construction of dense-only,
// multi-hashed, and random-sampled stacks; training through the single
// Trainer; batch inference; and checkpoint round-trips through the one
// format — including a byte-for-byte pre-redesign checkpoint and a legacy
// dense-baseline (kind 1) checkpoint migrating into the unified stack.
#include <gtest/gtest.h>

#include <cstring>
#include <sstream>

#include "baseline/dense_network.h"
#include "core/builder.h"
#include "core/serialize.h"
#include "core/trainer.h"
#include "data/batching.h"
#include "data/synthetic.h"
#include "metrics/metrics.h"

namespace slide {
namespace {

SyntheticDataset tiny_data(std::uint64_t seed = 41) {
  SyntheticConfig cfg;
  cfg.feature_dim = 200;
  cfg.label_dim = 50;
  cfg.num_train = 300;
  cfg.num_test = 80;
  cfg.features_per_label = 8;
  cfg.active_per_label = 5;
  cfg.seed = seed;
  return make_synthetic_xc(cfg);
}

HashFamilyConfig simhash_family(int k = 4, int l = 8) {
  HashFamilyConfig family;
  family.kind = HashFamilyKind::kSimhash;
  family.k = k;
  family.l = l;
  return family;
}

HashTable::Config small_table() {
  HashTable::Config table;
  table.range_pow = 8;
  return table;
}

// ---------------------------------------------------------------------------
// Construction
// ---------------------------------------------------------------------------

TEST(NetworkBuilder, PaperNetworkShapeAndKinds) {
  Network net = NetworkBuilder(100)
                    .dense(16)
                    .sampled(500, simhash_family(), 32)
                    .table(small_table())
                    .max_batch(8)
                    .build(2);
  EXPECT_EQ(net.input_dim(), 100u);
  EXPECT_EQ(net.output_dim(), 500u);
  EXPECT_EQ(net.stack_depth(), 1);
  EXPECT_EQ(net.stack(0).kind(), LayerKind::kSampled);
  EXPECT_TRUE(net.output_layer().hashed());
}

TEST(NetworkBuilder, DenseOnlyStack) {
  Network net = NetworkBuilder(40)
                    .dense(8)
                    .dense(30, Activation::kSoftmax)
                    .max_batch(4)
                    .build(1);
  EXPECT_EQ(net.stack(0).kind(), LayerKind::kDense);
  EXPECT_FALSE(net.output_layer().hashed());
  EXPECT_EQ(net.num_parameters(), 40u * 8 + 8 + 30u * 8 + 30);
  EXPECT_EQ(net.stack(0).average_active_fraction(), 1.0);
}

TEST(NetworkBuilder, RandomSampledStack) {
  Network net = NetworkBuilder(40)
                    .dense(8)
                    .random_sampled(30, 10)
                    .max_batch(4)
                    .build(1);
  EXPECT_EQ(net.stack(0).kind(), LayerKind::kRandomSampled);
  EXPECT_FALSE(net.output_layer().hashed());
  EXPECT_EQ(net.output_layer().config().sampling.target, 10u);
}

TEST(NetworkBuilder, DeepMixedStack) {
  // dense embedding -> dense ReLU -> hashed ReLU -> hashed softmax: three
  // stack layers, two of them with their own tables (multi-hashed).
  Network net = NetworkBuilder(60)
                    .dense(16)
                    .dense(12)
                    .sampled(200, simhash_family(), 24, Activation::kReLU)
                    .table(small_table())
                    .sampled(100, simhash_family(3, 6), 16)
                    .table(small_table())
                    .max_batch(4)
                    .build(2);
  EXPECT_EQ(net.stack_depth(), 3);
  EXPECT_EQ(net.num_layers(), 4);
  EXPECT_EQ(net.stack(0).kind(), LayerKind::kDense);
  EXPECT_EQ(net.stack(1).kind(), LayerKind::kSampled);
  EXPECT_EQ(net.stack(2).kind(), LayerKind::kSampled);
  EXPECT_EQ(net.stack(1).activation(), Activation::kReLU);
  EXPECT_EQ(net.output_dim(), 100u);
  // fan-in chain: 16 -> 12 -> 200 -> 100
  EXPECT_EQ(net.stack(1).fan_in(), 12u);
  EXPECT_EQ(net.stack(2).fan_in(), 200u);
}

TEST(NetworkBuilder, MakePaperNetworkIsBuilderBacked) {
  // The legacy helper and the fluent spelling must agree exactly.
  const NetworkConfig a = make_paper_network(100, 500, simhash_family(), 32,
                                             16);
  const NetworkConfig b = NetworkBuilder(100)
                              .dense(16)
                              .sampled(500, simhash_family(), 32)
                              .to_config();
  EXPECT_EQ(a.input_dim, b.input_dim);
  EXPECT_EQ(a.hidden_units, b.hidden_units);
  ASSERT_EQ(a.layers.size(), b.layers.size());
  EXPECT_EQ(a.layers[0].units, b.layers[0].units);
  EXPECT_EQ(a.layers[0].hashed, b.layers[0].hashed);
  EXPECT_EQ(a.layers[0].sampling.target, b.layers[0].sampling.target);
  EXPECT_EQ(a.layers[0].family.k, b.layers[0].family.k);
}

TEST(NetworkBuilder, RejectsMisuse) {
  // Stack layer before the embedding.
  EXPECT_THROW(NetworkBuilder(10).sampled(50, simhash_family(), 8), Error);
  // Non-ReLU first layer.
  EXPECT_THROW(NetworkBuilder(10).dense(8, Activation::kSoftmax), Error);
  // No stack layer at all.
  EXPECT_THROW(NetworkBuilder(10).dense(8).to_config(), Error);
  // Non-softmax output layer.
  EXPECT_THROW(NetworkBuilder(10).dense(8).dense(5).to_config(), Error);
  // Per-layer knob with no stack layer to apply it to.
  EXPECT_THROW(NetworkBuilder(10).dense(8).table(small_table()), Error);
}

// ---------------------------------------------------------------------------
// One Trainer for every stack
// ---------------------------------------------------------------------------

double train_and_eval(Network& net, const SyntheticDataset& data,
                      int iterations = 120) {
  TrainerConfig tc;
  tc.batch_size = 16;
  tc.num_threads = 2;
  tc.learning_rate = 5e-3f;
  Trainer trainer(net, tc);
  trainer.train(data.train, iterations);
  return evaluate_p_at_1(net, data.test, trainer.pool(), {.exact = true});
}

TEST(UnifiedStack, DenseBaselineTrainsViaTrainer) {
  const auto data = tiny_data(43);
  Network net = NetworkBuilder(data.train.feature_dim())
                    .dense(16)
                    .dense(data.train.label_dim(), Activation::kSoftmax)
                    .max_batch(16)
                    .build(2);
  EXPECT_GT(train_and_eval(net, data), 0.3);
}

TEST(UnifiedStack, MultiHashedStackTrainsViaTrainer) {
  const auto data = tiny_data(47);
  Network net = NetworkBuilder(data.train.feature_dim())
                    .dense(16)
                    .sampled(64, simhash_family(), 48, Activation::kReLU)
                    .table(small_table())
                    .sampled(data.train.label_dim(), simhash_family(), 24)
                    .table(small_table())
                    .max_batch(16)
                    .build(2);
  // A 3-layer multi-hashed stack must still learn the planted structure.
  EXPECT_GT(train_and_eval(net, data, 200), 0.25);
}

TEST(UnifiedStack, RandomSampledTrainsViaTrainer) {
  const auto data = tiny_data(53);
  Network net = NetworkBuilder(data.train.feature_dim())
                    .dense(16)
                    .random_sampled(data.train.label_dim(), 25)
                    .max_batch(16)
                    .build(2);
  EXPECT_GT(train_and_eval(net, data), 0.2);
}

// ---------------------------------------------------------------------------
// Batch inference
// ---------------------------------------------------------------------------

TEST(PredictBatch, MatchesPredictTopkExact) {
  const auto data = tiny_data(59);
  Network net = NetworkBuilder(data.train.feature_dim())
                    .dense(16)
                    .sampled(data.train.label_dim(), simhash_family(), 24)
                    .table(small_table())
                    .max_batch(16)
                    .build(2);
  train_and_eval(net, data, 40);

  std::vector<SparseVector> queries;
  for (std::size_t i = 0; i < 32; ++i)
    queries.push_back(data.test[i].features);

  BatchOutput out;
  net.predict_batch(queries, out, nullptr, /*top_k=*/5, /*exact=*/true);
  ASSERT_EQ(out.size(), queries.size());

  InferenceContext ctx(net);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const auto expected = net.predict_topk(queries[i], ctx, 5, true);
    const auto row = out.row(i);
    ASSERT_EQ(row.size(), expected.size()) << i;
    for (std::size_t j = 0; j < expected.size(); ++j)
      EXPECT_EQ(row[j], expected[j]) << i << "," << j;
  }
}

TEST(PredictBatch, PoolParallelMatchesSequentialExact) {
  const auto data = tiny_data(61);
  Network net = NetworkBuilder(data.train.feature_dim())
                    .dense(16)
                    .dense(data.train.label_dim(), Activation::kSoftmax)
                    .max_batch(16)
                    .build(4);
  train_and_eval(net, data, 30);

  std::vector<SparseVector> queries;
  for (std::size_t i = 0; i < 64; ++i)
    queries.push_back(data.test[i % data.test.size()].features);

  BatchOutput sequential, parallel;
  net.predict_batch(queries, sequential, nullptr, 3, true);
  ThreadPool pool(4);
  net.predict_batch(queries, parallel, &pool, 3, true);
  ASSERT_EQ(sequential.size(), parallel.size());
  for (std::size_t i = 0; i < sequential.size(); ++i) {
    const auto a = sequential.row(i);
    const auto b = parallel.row(i);
    ASSERT_EQ(a.size(), b.size()) << i;
    for (std::size_t j = 0; j < a.size(); ++j) EXPECT_EQ(a[j], b[j]) << i;
  }
}

TEST(PredictBatch, ReusesScratchAcrossCallsAndArchitectures) {
  const auto data = tiny_data(67);
  Network small = NetworkBuilder(data.train.feature_dim())
                      .dense(8)
                      .dense(20, Activation::kSoftmax)
                      .max_batch(4)
                      .build(1);
  Network wide = NetworkBuilder(data.train.feature_dim())
                     .dense(8)
                     .dense(data.train.label_dim(), Activation::kSoftmax)
                     .max_batch(4)
                     .build(1);
  std::vector<SparseVector> queries;
  for (std::size_t i = 0; i < 8; ++i)
    queries.push_back(data.test[i].features);

  // One BatchOutput across two different architectures (the serving
  // hot-swap shape): contexts must re-size transparently.
  BatchOutput out;
  small.predict_batch(queries, out, nullptr, 2, true);
  for (std::size_t i = 0; i < out.size(); ++i)
    for (Index label : out.row(i)) EXPECT_LT(label, 20u);
  wide.predict_batch(queries, out, nullptr, 2, true);
  for (std::size_t i = 0; i < out.size(); ++i)
    for (Index label : out.row(i)) EXPECT_LT(label, data.train.label_dim());
  EXPECT_EQ(out.size(), queries.size());
}

TEST(PredictBatch, EmptyInputYieldsEmptyOutput) {
  Network net = NetworkBuilder(10)
                    .dense(4)
                    .dense(5, Activation::kSoftmax)
                    .max_batch(2)
                    .build(1);
  BatchOutput out;
  net.predict_batch(std::span<const SparseVector>{}, out, nullptr, 3, true);
  EXPECT_EQ(out.size(), 0u);
  EXPECT_TRUE(out.labels().empty());
}

TEST(InferenceContext, ResetRetargetsArchitecture) {
  Network net = NetworkBuilder(10)
                    .dense(4)
                    .dense(5, Activation::kSoftmax)
                    .max_batch(2)
                    .build(1);
  InferenceContext ctx(net);
  EXPECT_GE(ctx.visited.capacity(), 5u);
  SparseVector x({1, 3}, {1.0f, 0.5f});
  (void)net.predict_top1(x, ctx, true);
  ctx.reset();
  EXPECT_TRUE(ctx.ids_a.empty() && ctx.act_a.empty());
  ctx.reset(100);
  EXPECT_EQ(ctx.visited.capacity(), 100u);
  ctx.reset(net);
  EXPECT_EQ(ctx.visited.capacity(), 5u);
}

// ---------------------------------------------------------------------------
// Checkpoint round-trips through the one format
// ---------------------------------------------------------------------------

void expect_identical_exact_predictions(const Network& a, const Network& b,
                                        const Dataset& queries,
                                        std::size_t n = 30) {
  InferenceContext ca(a), cb(b);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(a.predict_top1(queries[i].features, ca, true),
              b.predict_top1(queries[i].features, cb, true))
        << i;
  }
}

TEST(UnifiedCheckpoint, DenseOnlyStackRoundTrip) {
  const auto data = tiny_data(71);
  auto make = [&](std::uint64_t seed) {
    return NetworkBuilder(data.train.feature_dim())
        .dense(8)
        .dense(data.train.label_dim(), Activation::kSoftmax)
        .max_batch(16)
        .seed(seed)
        .build(2);
  };
  Network trained = make(1);
  train_and_eval(trained, data, 20);
  std::stringstream buffer;
  save_weights(trained, buffer);
  Network restored = make(999);
  load_weights(restored, buffer);
  expect_identical_exact_predictions(trained, restored, data.test);
}

TEST(UnifiedCheckpoint, MultiHashedStackRoundTrip) {
  const auto data = tiny_data(73);
  auto make = [&](std::uint64_t seed) {
    return NetworkBuilder(data.train.feature_dim())
        .dense(8)
        .sampled(64, simhash_family(), 32, Activation::kReLU)
        .table(small_table())
        .sampled(data.train.label_dim(), simhash_family(), 16)
        .table(small_table())
        .max_batch(16)
        .seed(seed)
        .build(2);
  };
  Network trained = make(1);
  train_and_eval(trained, data, 30);
  std::stringstream buffer;
  save_weights(trained, buffer);
  Network restored = make(999);
  ThreadPool pool(2);
  load_weights(restored, buffer, &pool);  // rebuilds both table groups
  expect_identical_exact_predictions(trained, restored, data.test);
  // Sampled inference also works after load (tables rebuilt).
  const double acc = evaluate_p_at_1(restored, data.test, pool, {});
  EXPECT_GE(acc, 0.0);
}

TEST(UnifiedCheckpoint, RandomSampledStackRoundTrip) {
  const auto data = tiny_data(79);
  auto make = [&](std::uint64_t seed) {
    return NetworkBuilder(data.train.feature_dim())
        .dense(8)
        .random_sampled(data.train.label_dim(), 15)
        .max_batch(16)
        .seed(seed)
        .build(2);
  };
  Network trained = make(1);
  train_and_eval(trained, data, 20);
  std::stringstream buffer;
  save_weights(trained, buffer);
  Network restored = make(999);
  load_weights(restored, buffer);
  expect_identical_exact_predictions(trained, restored, data.test);
}

TEST(UnifiedCheckpoint, MixedStackRejectsWrongShape) {
  const auto data = tiny_data(83);
  Network a = NetworkBuilder(data.train.feature_dim())
                  .dense(8)
                  .dense(data.train.label_dim(), Activation::kSoftmax)
                  .max_batch(4)
                  .build(1);
  std::stringstream buffer;
  save_weights(a, buffer);
  Network deeper = NetworkBuilder(data.train.feature_dim())
                       .dense(8)
                       .dense(12)
                       .dense(data.train.label_dim(), Activation::kSoftmax)
                       .max_batch(4)
                       .build(1);
  EXPECT_THROW(load_weights(deeper, buffer), Error);
}

// The exact byte stream the pre-redesign writer produced (magic, version 1,
// kind 0, dims, then [count]float blocks with u32 units/fan_in prefixes per
// layer), written by hand here: loading it into a builder-constructed
// network proves old checkpoints survive the API redesign.
void write_u32(std::ostream& out, std::uint32_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

void write_block(std::ostream& out, const std::vector<float>& data) {
  write_u32(out, static_cast<std::uint32_t>(data.size()));
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size() * sizeof(float)));
}

TEST(UnifiedCheckpoint, LoadsPreRedesignCheckpointBytes) {
  const Index input_dim = 12, hidden = 4, labels = 9;
  std::vector<float> emb_w(static_cast<std::size_t>(input_dim) * hidden);
  std::vector<float> emb_b(hidden);
  std::vector<float> out_w(static_cast<std::size_t>(labels) * hidden);
  std::vector<float> out_b(labels);
  for (std::size_t i = 0; i < emb_w.size(); ++i)
    emb_w[i] = 0.01f * static_cast<float>(i);
  for (std::size_t i = 0; i < emb_b.size(); ++i)
    emb_b[i] = 0.5f - 0.1f * static_cast<float>(i);
  for (std::size_t i = 0; i < out_w.size(); ++i)
    out_w[i] = -0.02f * static_cast<float>(i);
  for (std::size_t i = 0; i < out_b.size(); ++i)
    out_b[i] = 0.25f * static_cast<float>(i);

  std::stringstream buffer;
  write_u32(buffer, 0x534C4944);  // "SLID"
  write_u32(buffer, 1);           // version
  write_u32(buffer, 0);           // kind: slide network
  write_u32(buffer, input_dim);
  write_u32(buffer, hidden);
  write_u32(buffer, 1);  // num stack layers
  write_block(buffer, emb_w);
  write_block(buffer, emb_b);
  write_u32(buffer, labels);
  write_u32(buffer, hidden);
  write_block(buffer, out_w);
  write_block(buffer, out_b);

  Network net = NetworkBuilder(input_dim)
                    .dense(hidden)
                    .sampled(labels, simhash_family(2, 4), 4)
                    .table(small_table())
                    .max_batch(2)
                    .build(1);
  load_weights(net, buffer);
  EXPECT_EQ(0, std::memcmp(net.embedding().weights_span().data(),
                           emb_w.data(), emb_w.size() * sizeof(float)));
  EXPECT_EQ(0, std::memcmp(net.output_layer().weights_span().data(),
                           out_w.data(), out_w.size() * sizeof(float)));
  EXPECT_EQ(net.output_layer().bias(2), out_b[2]);
}

TEST(UnifiedCheckpoint, LegacyDenseKindLoadsIntoUnifiedStack) {
  // A checkpoint written by the deprecated DenseNetwork wrapper (kind 1)
  // loads into a builder-constructed dense stack of the same shape.
  const auto data = tiny_data(89);
  DenseNetwork::Config cfg;
  cfg.input_dim = data.train.feature_dim();
  cfg.hidden_units = 8;
  cfg.output_units = data.train.label_dim();
  cfg.max_batch_size = 16;
  DenseNetwork legacy(cfg, 2);
  ThreadPool pool(2);
  Batcher batcher(data.train, 16, true, 5);
  for (int i = 0; i < 10; ++i)
    legacy.step(data.train, batcher.next(), 5e-3f, pool);
  std::stringstream buffer;
  save_weights(legacy, buffer);

  Network unified = NetworkBuilder(cfg.input_dim)
                        .dense(cfg.hidden_units)
                        .dense(cfg.output_units, Activation::kSoftmax)
                        .max_batch(4)
                        .seed(31337)
                        .build(1);
  load_weights(unified, buffer);

  InferenceContext ctx(unified);
  std::vector<float> scratch;
  for (std::size_t i = 0; i < 30; ++i) {
    EXPECT_EQ(legacy.predict_top1(data.test[i].features, scratch),
              unified.predict_top1(data.test[i].features, ctx, true))
        << i;
  }
}

TEST(DenseNetworkAlias, ExposesUnifiedNetworkForMigration) {
  DenseNetwork::Config cfg;
  cfg.input_dim = 10;
  cfg.hidden_units = 4;
  cfg.output_units = 7;
  cfg.max_batch_size = 2;
  DenseNetwork net(cfg, 1);
  EXPECT_EQ(net.network().stack_depth(), 1);
  EXPECT_EQ(net.network().stack(0).kind(), LayerKind::kDense);
  EXPECT_EQ(net.network().output_dim(), 7u);
  EXPECT_EQ(net.num_parameters(), net.network().num_parameters());
}

}  // namespace
}  // namespace slide
