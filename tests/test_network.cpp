// Network-level tests: construction, the all-active equivalence between the
// hashed path and dense computation, training-sample mechanics, prediction
// paths, and parameter accounting.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "core/network.h"

namespace slide {
namespace {

NetworkConfig tiny_config(Index input_dim = 20, Index labels = 50,
                          Index hidden = 8, Index target = 16) {
  HashFamilyConfig family;
  family.kind = HashFamilyKind::kSimhash;
  family.k = 4;
  family.l = 8;
  NetworkConfig cfg = make_paper_network(input_dim, labels, family, target,
                                         hidden);
  cfg.max_batch_size = 8;
  cfg.layers[0].table.range_pow = 8;
  cfg.layers[0].table.bucket_size = 32;
  return cfg;
}

Sample make_sample(std::initializer_list<Index> feat,
                   std::initializer_list<Index> labels) {
  Sample s;
  std::vector<Index> idx(feat);
  std::vector<float> val(idx.size(), 0.5f);
  s.features = SparseVector(std::move(idx), std::move(val));
  s.features.l2_normalize();
  s.labels = labels;
  return s;
}

TEST(Network, ConstructionAndShapes) {
  Network net(tiny_config(), 2);
  EXPECT_EQ(net.input_dim(), 20u);
  EXPECT_EQ(net.output_dim(), 50u);
  EXPECT_EQ(net.num_layers(), 2);
  EXPECT_EQ(net.embedding().units(), 8u);
  EXPECT_TRUE(net.output_layer().hashed());
  // params: 20*8 + 8 (embedding) + 50*8 + 50 (output)
  EXPECT_EQ(net.num_parameters(), 20u * 8 + 8 + 50u * 8 + 50);
}

TEST(Network, RejectsInvalidConfig) {
  NetworkConfig cfg = tiny_config();
  cfg.input_dim = 0;
  EXPECT_THROW(Network(cfg, 2), Error);
  cfg = tiny_config();
  cfg.layers.clear();
  EXPECT_THROW(Network(cfg, 2), Error);
}

TEST(Network, TrainSampleReturnsFiniteLossAndActivatesLabels) {
  Network net(tiny_config(), 2);
  const Sample s = make_sample({1, 5, 7}, {13, 30});
  Rng rng(1);
  VisitedSet visited(net.max_sampled_units());
  const float loss = net.train_sample(0, s, 1.0f, rng, visited, 0);
  EXPECT_TRUE(std::isfinite(loss));
  EXPECT_GT(loss, 0.0f);
  const auto& ids = net.output_layer().slot(0).ids;
  ASSERT_GE(ids.size(), 2u);
  EXPECT_EQ(ids[0], 13u);
  EXPECT_EQ(ids[1], 30u);
}

TEST(Network, LossDecreasesWithRepeatedUpdatesOnOneSample) {
  Network net(tiny_config(), 2);
  const Sample s = make_sample({2, 3}, {7});
  Rng rng(2);
  VisitedSet visited(net.max_sampled_units());
  float first = 0.0f, last = 0.0f;
  for (int step = 0; step < 60; ++step) {
    const float loss = net.train_sample(0, s, 1.0f, rng, visited, 0);
    if (step == 0) first = loss;
    last = loss;
    net.apply_updates(0.01f, nullptr);
  }
  EXPECT_LT(last, first * 0.5f);
}

TEST(Network, PredictLearnsTheTrainedLabel) {
  Network net(tiny_config(), 2);
  const Sample s = make_sample({2, 3}, {7});
  Rng rng(3);
  VisitedSet visited(net.max_sampled_units());
  for (int step = 0; step < 80; ++step) {
    net.train_sample(0, s, 1.0f, rng, visited, 0);
    net.apply_updates(0.01f, nullptr);
  }
  net.rebuild_all(nullptr);
  InferenceContext ctx(net.max_sampled_units());
  EXPECT_EQ(net.predict_top1(s.features, ctx, /*exact=*/true), 7u);
  EXPECT_EQ(net.predict_top1(s.features, ctx, /*exact=*/false), 7u);
}

TEST(Network, AllActiveHashedMatchesExactPrediction) {
  // With sampling.target >= units the hashed path activates every neuron, so
  // sampled and exact predictions must agree everywhere.
  NetworkConfig cfg = tiny_config(20, 40, 8, /*target=*/1'000);
  Network net(cfg, 2);
  InferenceContext ctx(net.max_sampled_units());
  Rng rng(4);
  for (int trial = 0; trial < 20; ++trial) {
    Sample s = make_sample({rng.uniform(20), rng.uniform(20)}, {0});
    const Index exact = net.predict_top1(s.features, ctx, true);
    const Index sampled = net.predict_top1(s.features, ctx, false);
    EXPECT_EQ(exact, sampled);
  }
}

TEST(Network, MaybeRebuildHonorsSchedule) {
  NetworkConfig cfg = tiny_config();
  cfg.layers[0].rebuild.initial_period = 5;
  cfg.layers[0].rebuild.decay = 0.0;  // constant gap
  Network net(cfg, 2);
  net.maybe_rebuild(4, nullptr);
  EXPECT_EQ(net.output_layer().rebuild_count(), 0);
  net.maybe_rebuild(5, nullptr);
  EXPECT_EQ(net.output_layer().rebuild_count(), 1);
  net.maybe_rebuild(9, nullptr);
  EXPECT_EQ(net.output_layer().rebuild_count(), 1);
  net.maybe_rebuild(10, nullptr);
  EXPECT_EQ(net.output_layer().rebuild_count(), 2);
}

TEST(Network, MultiLayerSampledStackTrains) {
  // Three-layer net with a hashed middle layer (paper Figure 2 shows hash
  // tables in hidden layers as well).
  NetworkConfig cfg;
  cfg.input_dim = 30;
  cfg.hidden_units = 8;
  cfg.max_batch_size = 4;

  LayerSpec middle;
  middle.units = 64;
  middle.activation = Activation::kReLU;
  middle.hashed = true;
  middle.family.kind = HashFamilyKind::kSimhash;
  middle.family.k = 3;
  middle.family.l = 6;
  middle.table.range_pow = 6;
  middle.table.bucket_size = 16;
  middle.sampling.target = 16;

  LayerSpec output;
  output.units = 40;
  output.activation = Activation::kSoftmax;
  output.hashed = true;
  output.family.kind = HashFamilyKind::kSimhash;
  output.family.k = 3;
  output.family.l = 6;
  output.table.range_pow = 6;
  output.table.bucket_size = 16;
  output.sampling.target = 12;

  cfg.layers = {middle, output};
  Network net(cfg, 2);
  EXPECT_EQ(net.num_layers(), 3);

  const Sample s = make_sample({1, 2, 3}, {5});
  Rng rng(5);
  VisitedSet visited(net.max_sampled_units());
  float first = 0.0f, last = 0.0f;
  for (int step = 0; step < 80; ++step) {
    const float loss = net.train_sample(0, s, 1.0f, rng, visited, 0);
    if (step == 0) first = loss;
    last = loss;
    net.apply_updates(0.02f, nullptr);
  }
  EXPECT_LT(last, first);
  InferenceContext ctx(net.max_sampled_units());
  EXPECT_EQ(net.predict_top1(s.features, ctx, true), 5u);
}

TEST(Network, IncrementalRehashKeepsTablesConsistent) {
  // Train two identical nets, one with incremental Simhash re-hashing; after
  // a rebuild, both table sets must place each neuron in the same buckets
  // (the memo path is exact, not approximate).
  NetworkConfig base = tiny_config(20, 30, 8, 10);
  base.layers[0].rebuild.initial_period = 1'000'000;  // manual rebuilds only
  NetworkConfig incremental = base;
  incremental.layers[0].incremental_rehash = true;

  Network a(base, 1), b(incremental, 1);
  const Sample s = make_sample({2, 9}, {3});
  Rng rng_a(6), rng_b(6);
  VisitedSet va(a.max_sampled_units()), vb(b.max_sampled_units());
  for (int step = 0; step < 10; ++step) {
    a.train_sample(0, s, 1.0f, rng_a, va, 0);
    b.train_sample(0, s, 1.0f, rng_b, vb, 0);
    a.apply_updates(0.01f, nullptr);
    b.apply_updates(0.01f, nullptr);
  }
  a.rebuild_all(nullptr);
  b.rebuild_all(nullptr);
  // Same seeds -> identical weights; exact-mode predictions must agree.
  InferenceContext ca(a.max_sampled_units()), cb(b.max_sampled_units());
  for (Index f = 0; f < 10; ++f) {
    Sample probe = make_sample({f, f + 5}, {0});
    EXPECT_EQ(a.predict_top1(probe.features, ca, true),
              b.predict_top1(probe.features, cb, true));
  }
}

TEST(Network, SampledSoftmaxModeActivatesLabelsPlusRandom) {
  NetworkConfig cfg = tiny_config();
  cfg.layers[0].hashed = false;
  cfg.layers[0].random_sampled = true;
  cfg.layers[0].sampling.target = 20;
  Network net(cfg, 2);
  const Sample s = make_sample({1, 2}, {11});
  Rng rng(7);
  VisitedSet visited(net.max_sampled_units());
  net.train_sample(0, s, 1.0f, rng, visited, 0);
  const auto& ids = net.output_layer().slot(0).ids;
  EXPECT_EQ(ids.size(), 20u);
  EXPECT_EQ(ids[0], 11u);
  std::set<Index> unique(ids.begin(), ids.end());
  EXPECT_EQ(unique.size(), ids.size());
}

}  // namespace
}  // namespace slide
