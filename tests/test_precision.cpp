// BF16 quantized-inference contract: builder knob, weight mirrors, memory
// accounting, fp32-vs-bf16 prediction agreement, checkpoint precision tags
// (v2) and legacy v1 compatibility.
#include <gtest/gtest.h>

#include <cstring>
#include <sstream>

#include "core/builder.h"
#include "core/serialize.h"
#include "core/trainer.h"
#include "data/synthetic.h"
#include "simd/bf16.h"

namespace slide {
namespace {

SyntheticDataset tiny_data() {
  SyntheticConfig cfg;
  cfg.feature_dim = 300;
  cfg.label_dim = 60;
  cfg.num_train = 400;
  cfg.num_test = 120;
  cfg.features_per_label = 10;
  cfg.active_per_label = 6;
  cfg.seed = 91;
  return make_synthetic_xc(cfg);
}

NetworkConfig net_config(const SyntheticDataset& data,
                         Precision precision = Precision::kFP32,
                         std::uint64_t seed = 123) {
  HashFamilyConfig family;
  family.kind = HashFamilyKind::kSimhash;
  family.k = 4;
  family.l = 10;
  NetworkConfig cfg =
      NetworkBuilder(data.train.feature_dim())
          .dense(8)
          .sampled(data.train.label_dim(), family, 16)
          .max_batch(16)
          .precision(precision)
          .seed(seed)
          .to_config();
  cfg.layers[0].table.range_pow = 8;
  return cfg;
}

void train_a_bit(Network& net, const Dataset& train, int iters = 80) {
  TrainerConfig tc;
  tc.batch_size = 16;
  tc.num_threads = 2;
  tc.learning_rate = 5e-3f;
  Trainer trainer(net, tc);
  trainer.train(train, iters);
}

TEST(Precision, BuilderAndParseRoundTrip) {
  const auto data = tiny_data();
  EXPECT_EQ(net_config(data).precision, Precision::kFP32);
  EXPECT_EQ(net_config(data, Precision::kBF16).precision, Precision::kBF16);
  EXPECT_EQ(parse_precision("fp32"), Precision::kFP32);
  EXPECT_EQ(parse_precision("bf16"), Precision::kBF16);
  EXPECT_EQ(parse_precision("fp16"), Precision::kFP16);
  EXPECT_EQ(parse_precision("int8"), Precision::kInt8);
  EXPECT_STREQ(to_string(Precision::kBF16), "bf16");
  EXPECT_STREQ(to_string(Precision::kFP16), "fp16");
  EXPECT_STREQ(to_string(Precision::kInt8), "int8");
  EXPECT_THROW(parse_precision("int4"), Error);
}

TEST(Precision, Bf16NetworkHalvesInferenceWeightBytes) {
  const auto data = tiny_data();
  Network fp32(net_config(data), 2);
  Network bf16(net_config(data, Precision::kBF16), 2);

  const MemoryFootprint f32 = fp32.memory_footprint();
  const MemoryFootprint f16 = bf16.memory_footprint();
  EXPECT_EQ(f32.mirror_bytes, 0u);
  EXPECT_GT(f16.mirror_bytes, 0u);
  EXPECT_EQ(f32.master_weight_bytes, f16.master_weight_bytes);
  // The scoring path reads bf16 mirrors + fp32 biases: strictly more than
  // half only by the (tiny) bias term.
  EXPECT_LT(f16.inference_weight_bytes,
            f32.inference_weight_bytes / 2 + f32.inference_weight_bytes / 20);
  EXPECT_GE(f16.inference_weight_bytes, f32.inference_weight_bytes / 2);
  EXPECT_EQ(bf16.precision(), Precision::kBF16);
}

TEST(Precision, Fp16NetworkHalvesInferenceWeightBytes) {
  const auto data = tiny_data();
  Network fp32(net_config(data), 2);
  Network fp16(net_config(data, Precision::kFP16), 2);

  const MemoryFootprint f32 = fp32.memory_footprint();
  const MemoryFootprint f16 = fp16.memory_footprint();
  EXPECT_GT(f16.mirror_bytes, 0u);
  EXPECT_EQ(f32.master_weight_bytes, f16.master_weight_bytes);
  EXPECT_LT(f16.inference_weight_bytes,
            f32.inference_weight_bytes / 2 + f32.inference_weight_bytes / 20);
  EXPECT_GE(f16.inference_weight_bytes, f32.inference_weight_bytes / 2);
  EXPECT_EQ(fp16.precision(), Precision::kFP16);
}

TEST(Precision, Int8NetworkQuartersInferenceWeightBytes) {
  // Wider rows than the tiny fixture: the per-row fp32 scale amortizes over
  // the row length, so the quarter-bytes contract needs realistic (not
  // 8-wide) rows to be meaningful.
  const auto data = tiny_data();
  auto wide_config = [&](Precision p) {
    NetworkConfig cfg = net_config(data, p);
    cfg.hidden_units = 64;
    return cfg;
  };
  Network fp32(wide_config(Precision::kFP32), 2);
  Network int8(wide_config(Precision::kInt8), 2);

  const MemoryFootprint f32 = fp32.memory_footprint();
  const MemoryFootprint i8 = int8.memory_footprint();
  EXPECT_GT(i8.mirror_bytes, 0u);
  EXPECT_EQ(f32.master_weight_bytes, i8.master_weight_bytes);
  // s8 weights are a quarter of fp32; the per-row fp32 scales and biases
  // add a small per-unit overhead on top (same slack shape as bf16's bias
  // term above).
  EXPECT_LT(i8.inference_weight_bytes,
            f32.inference_weight_bytes / 4 + f32.inference_weight_bytes / 20);
  EXPECT_GE(i8.inference_weight_bytes, f32.inference_weight_bytes / 4);
  EXPECT_EQ(int8.precision(), Precision::kInt8);
}

TEST(Precision, Bf16PredictionsAgreeWithFp32) {
  const auto data = tiny_data();
  Network trained(net_config(data), 2);
  train_a_bit(trained, data.train);
  std::stringstream buffer;
  save_weights(trained, buffer);

  Network fp32(net_config(data, Precision::kFP32, 999), 2);
  buffer.seekg(0);
  load_weights(fp32, buffer);
  Network bf16(net_config(data, Precision::kBF16, 555), 2);
  buffer.seekg(0);
  load_weights(bf16, buffer);

  InferenceContext ctx_a(fp32), ctx_b(bf16);
  int agree = 0, total = 0;
  for (const Sample& s : data.test.samples()) {
    const Index a = fp32.predict_top1(s.features, ctx_a, /*exact=*/true);
    const Index b = bf16.predict_top1(s.features, ctx_b, /*exact=*/true);
    agree += a == b;
    ++total;
  }
  // Acceptance bar: >= 99% top-1 agreement on the fixture net.
  EXPECT_GE(agree, (total * 99) / 100) << agree << "/" << total;
}

// Shared body for the quantized-tier agreement bar: train fp32, reload the
// checkpoint at `precision`, and require >= 99% top-1 agreement (the
// acceptance bound of every tier in the precision table).
void expect_top1_agreement(Precision precision) {
  const auto data = tiny_data();
  Network trained(net_config(data), 2);
  train_a_bit(trained, data.train);
  std::stringstream buffer;
  save_weights(trained, buffer);

  Network fp32(net_config(data, Precision::kFP32, 999), 2);
  buffer.seekg(0);
  load_weights(fp32, buffer);
  Network quant(net_config(data, precision, 555), 2);
  buffer.seekg(0);
  load_weights(quant, buffer);

  InferenceContext ctx_a(fp32), ctx_b(quant);
  int agree = 0, total = 0;
  for (const Sample& s : data.test.samples()) {
    const Index a = fp32.predict_top1(s.features, ctx_a, /*exact=*/true);
    const Index b = quant.predict_top1(s.features, ctx_b, /*exact=*/true);
    agree += a == b;
    ++total;
  }
  EXPECT_GE(agree, (total * 99) / 100)
      << to_string(precision) << ": " << agree << "/" << total;

  // The sampled (LSH) serving path must run through the same tier without
  // incident — smoke the non-exact scoring loop too.
  for (int i = 0; i < 20; ++i) {
    const Sample& s = data.test.samples()[static_cast<std::size_t>(i)];
    (void)quant.predict_top1(s.features, ctx_b, /*exact=*/false);
  }
}

TEST(Precision, Fp16PredictionsAgreeWithFp32) {
  expect_top1_agreement(Precision::kFP16);
}

TEST(Precision, Int8PredictionsAgreeWithFp32) {
  expect_top1_agreement(Precision::kInt8);
}

TEST(Precision, Int8ScalesRederiveBitExactAcrossShardCounts) {
  // Per-row scales are never serialized: checkpoints carry fp32 masters and
  // the precision tag, and every load re-derives the mirror. Quantization
  // is row-local and deterministic, so the same checkpoint loaded under any
  // shard partition must serve identical predictions — if any row's scale
  // differed by even one ulp between partitions, scores (and orderings)
  // would drift.
  const auto data = tiny_data();
  Network trained(net_config(data), 2);
  train_a_bit(trained, data.train);
  std::stringstream buffer;
  save_weights(trained, buffer);

  std::vector<std::vector<std::vector<Index>>> per_shard_topk;
  for (const int shards : {0, 1, 4}) {
    NetworkConfig cfg = net_config(data, Precision::kInt8, 77);
    cfg.layers[0].shards = shards;
    Network net(cfg, 2);
    buffer.clear();
    buffer.seekg(0);
    load_weights(net, buffer);
    InferenceContext ctx(net);
    std::vector<std::vector<Index>> topk;
    for (const Sample& s : data.test.samples())
      topk.push_back(net.predict_topk(s.features, ctx, 5, /*exact=*/true));
    per_shard_topk.push_back(std::move(topk));
  }
  EXPECT_EQ(per_shard_topk[0], per_shard_topk[1]);
  EXPECT_EQ(per_shard_topk[0], per_shard_topk[2]);
}

TEST(Precision, RefreshMirrorsTracksTrainedWeights) {
  const auto data = tiny_data();
  Network net(net_config(data, Precision::kBF16), 2);
  InferenceContext ctx(net);
  // Mutate the masters (training); the mirror is stale until refreshed.
  train_a_bit(net, data.train, 40);
  net.refresh_inference_mirrors();
  // After the refresh, predictions through the bf16 path must agree with an
  // fp32 clone of the same (trained) weights — i.e. the mirror reflects the
  // post-training masters, not the initialization.
  std::stringstream buffer;
  save_weights(net, buffer);
  Network fp32(net_config(data, Precision::kFP32, 7), 2);
  buffer.seekg(0);
  load_weights(fp32, buffer);
  InferenceContext ctx2(fp32);
  int agree = 0, total = 0;
  for (const Sample& s : data.test.samples()) {
    agree += net.predict_top1(s.features, ctx, true) ==
             fp32.predict_top1(s.features, ctx2, true);
    ++total;
  }
  EXPECT_GE(agree, (total * 99) / 100) << agree << "/" << total;
}

TEST(Precision, CheckpointCarriesPrecisionTag) {
  const auto data = tiny_data();
  Network bf16(net_config(data, Precision::kBF16), 2);
  std::stringstream buffer;
  save_weights(bf16, buffer);
  buffer.seekg(0);
  const CheckpointInfo info = peek_checkpoint_info(buffer);
  EXPECT_EQ(info.version, 5u);
  EXPECT_EQ(info.kind, 0u);
  EXPECT_EQ(info.precision, Precision::kBF16);
  // peek must not consume: a full load still works afterwards.
  Network restored(net_config(data, Precision::kFP32, 31), 2);
  load_weights(restored, buffer);

  Network fp32(net_config(data), 2);
  std::stringstream buffer2;
  save_weights(fp32, buffer2);
  buffer2.seekg(0);
  EXPECT_EQ(peek_checkpoint_info(buffer2).precision, Precision::kFP32);

  // The two new tiers tag and reload the same way (mirror re-derived on
  // load, never serialized).
  for (const Precision p : {Precision::kFP16, Precision::kInt8}) {
    Network net(net_config(data, p, 41), 2);
    std::stringstream buf;
    save_weights(net, buf);
    buf.seekg(0);
    EXPECT_EQ(peek_checkpoint_info(buf).precision, p);
    Network reloaded(net_config(data, p, 43), 2);
    load_weights(reloaded, buf);
    EXPECT_GT(reloaded.memory_footprint().mirror_bytes, 0u);
  }
}

// Byte-level writer for the pre-tag (version 1) format, replicating the
// old save_weights layout exactly.
void write_u32(std::ostream& out, std::uint32_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}
void write_block(std::ostream& out, std::span<const float> data) {
  write_u32(out, static_cast<std::uint32_t>(data.size()));
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size() * sizeof(float)));
}

TEST(Precision, LegacyVersion1CheckpointLoadsUnchanged) {
  const auto data = tiny_data();
  Network trained(net_config(data), 2);
  train_a_bit(trained, data.train, 30);

  std::stringstream v1;
  write_u32(v1, 0x534C4944u);  // magic
  write_u32(v1, 1u);           // version 1: no precision tag
  write_u32(v1, 0u);           // kind 0 (unified stack)
  write_u32(v1, trained.embedding().input_dim());
  write_u32(v1, trained.embedding().units());
  write_u32(v1, static_cast<std::uint32_t>(trained.stack_depth()));
  write_block(v1, trained.embedding().weights_span());
  write_block(v1, trained.embedding().bias_span());
  for (int i = 0; i < trained.stack_depth(); ++i) {
    const Layer& layer = trained.stack(i);
    write_u32(v1, layer.units());
    write_u32(v1, layer.fan_in());
    write_block(v1, layer.weights_span());
    write_block(v1, layer.bias_span());
  }

  v1.seekg(0);
  EXPECT_EQ(peek_checkpoint_info(v1).version, 1u);
  EXPECT_EQ(peek_checkpoint_info(v1).precision, Precision::kFP32);

  // Loads into an fp32 network bit-identically...
  Network restored(net_config(data, Precision::kFP32, 999), 2);
  load_weights(restored, v1);
  const auto tw = trained.output_layer().weights_span();
  const auto rw = restored.output_layer().weights_span();
  ASSERT_EQ(tw.size(), rw.size());
  for (std::size_t i = 0; i < tw.size(); ++i) ASSERT_EQ(tw[i], rw[i]);

  // ...and into a bf16 network, which derives its mirror on load.
  Network quantized(net_config(data, Precision::kBF16, 1000), 2);
  v1.clear();
  v1.seekg(0);
  load_weights(quantized, v1);
  EXPECT_GT(quantized.memory_footprint().mirror_bytes, 0u);
}

TEST(Precision, TrainingStaysOnFp32Masters) {
  // A bf16 network and an fp32 network with identical seeds must train to
  // bit-identical master weights: the mirror never feeds back into
  // training math.
  const auto data = tiny_data();
  Network a(net_config(data, Precision::kFP32), 2);
  Network b(net_config(data, Precision::kBF16), 2);
  TrainerConfig tc;
  tc.batch_size = 16;
  tc.num_threads = 1;  // deterministic accumulation order
  tc.learning_rate = 5e-3f;
  tc.shuffle = false;
  Trainer ta(a, tc), tb(b, tc);
  ta.train(data.train, 25);
  tb.train(data.train, 25);
  const auto wa = a.output_layer().weights_span();
  const auto wb = b.output_layer().weights_span();
  ASSERT_EQ(wa.size(), wb.size());
  for (std::size_t i = 0; i < wa.size(); ++i) ASSERT_EQ(wa[i], wb[i]) << i;
  const auto ea = a.embedding().weights_span();
  const auto eb = b.embedding().weights_span();
  for (std::size_t i = 0; i < ea.size(); ++i) ASSERT_EQ(ea[i], eb[i]) << i;
}

}  // namespace
}  // namespace slide
