// Trainer tests: end-to-end convergence on planted synthetic data,
// single-thread determinism, HOGWILD multi-thread training, the locked
// ablation, rebuild scheduling and instrumentation plumbing.
#include <gtest/gtest.h>

#include <cmath>

#include "core/trainer.h"
#include "data/synthetic.h"
#include "metrics/metrics.h"

namespace slide {
namespace {

SyntheticDataset tiny_data(std::uint64_t seed = 42) {
  SyntheticConfig cfg;
  cfg.feature_dim = 400;
  cfg.label_dim = 80;
  cfg.num_train = 600;
  cfg.num_test = 150;
  cfg.features_per_label = 10;
  cfg.active_per_label = 6;
  cfg.noise_features = 2;
  cfg.min_labels_per_sample = 1;
  cfg.max_labels_per_sample = 2;
  cfg.seed = seed;
  return make_synthetic_xc(cfg);
}

NetworkConfig tiny_net_config(const SyntheticDataset& data,
                              Index target = 24) {
  HashFamilyConfig family;
  family.kind = HashFamilyKind::kSimhash;
  family.k = 5;
  family.l = 16;
  NetworkConfig cfg = make_paper_network(data.train.feature_dim(),
                                         data.train.label_dim(), family,
                                         target, /*hidden=*/16);
  cfg.max_batch_size = 32;
  cfg.layers[0].table.range_pow = 9;
  cfg.layers[0].table.bucket_size = 32;
  cfg.layers[0].rebuild.initial_period = 20;
  return cfg;
}

TEST(Trainer, LossFallsAndAccuracyRisesOnPlantedData) {
  const auto data = tiny_data();
  NetworkConfig net_cfg = tiny_net_config(data);
  Network net(net_cfg, 2);
  TrainerConfig cfg;
  cfg.batch_size = 32;
  cfg.num_threads = 2;
  cfg.learning_rate = 5e-3f;
  Trainer trainer(net, cfg);

  ThreadPool& pool = trainer.pool();
  const double acc_before =
      evaluate_p_at_1(net, data.test, pool, {.exact = true});

  Batcher batcher(data.train, 32, true, 1);
  float early_loss = 0.0f, late_loss = 0.0f;
  const int iters = 120;
  for (int i = 0; i < iters; ++i) {
    const float loss = trainer.step(data.train, batcher.next());
    if (i < 10) early_loss += loss;
    if (i >= iters - 10) late_loss += loss;
  }
  EXPECT_LT(late_loss, early_loss * 0.8f);

  const double acc_after =
      evaluate_p_at_1(net, data.test, pool, {.exact = true});
  EXPECT_GT(acc_after, acc_before + 0.15);
  EXPECT_GT(acc_after, 0.25);
}

TEST(Trainer, SingleThreadIsDeterministic) {
  const auto data = tiny_data(7);
  auto run = [&] {
    NetworkConfig net_cfg = tiny_net_config(data);
    Network net(net_cfg, 1);
    TrainerConfig cfg;
    cfg.batch_size = 16;
    cfg.num_threads = 1;
    cfg.learning_rate = 1e-3f;
    cfg.seed = 5;
    Trainer trainer(net, cfg);
    std::vector<float> losses;
    Batcher batcher(data.train, 16, true, 3);
    for (int i = 0; i < 20; ++i)
      losses.push_back(trainer.step(data.train, batcher.next()));
    return losses;
  };
  const auto a = run();
  const auto b = run();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]) << i;
}

TEST(Trainer, HogwildMultithreadStillConverges) {
  const auto data = tiny_data(9);
  NetworkConfig net_cfg = tiny_net_config(data);
  Network net(net_cfg, 4);
  TrainerConfig cfg;
  cfg.batch_size = 32;
  cfg.num_threads = 4;  // oversubscribed on 2 cores — still correct
  cfg.learning_rate = 5e-3f;
  cfg.hogwild = true;
  Trainer trainer(net, cfg);
  trainer.train(data.train, 120);
  const double acc =
      evaluate_p_at_1(net, data.test, trainer.pool(), {.exact = true});
  EXPECT_GT(acc, 0.25);
}

TEST(Trainer, LockedAblationMatchesHogwildQuality) {
  const auto data = tiny_data(11);
  NetworkConfig net_cfg = tiny_net_config(data);
  Network net(net_cfg, 2);
  TrainerConfig cfg;
  cfg.batch_size = 32;
  cfg.num_threads = 2;
  cfg.learning_rate = 5e-3f;
  cfg.hogwild = false;  // mutex-guarded accumulation
  Trainer trainer(net, cfg);
  trainer.train(data.train, 120);
  const double acc =
      evaluate_p_at_1(net, data.test, trainer.pool(), {.exact = true});
  EXPECT_GT(acc, 0.25);
}

TEST(Trainer, TrainCallbackFiresOnSchedule) {
  const auto data = tiny_data(13);
  NetworkConfig net_cfg = tiny_net_config(data);
  Network net(net_cfg, 1);
  TrainerConfig cfg;
  cfg.batch_size = 16;
  cfg.num_threads = 1;
  Trainer trainer(net, cfg);
  std::vector<long> fired;
  trainer.train(data.train, 10, [&](long it) { fired.push_back(it); }, 3);
  // Fires at 3, 6, 9 and on the last iteration (10).
  ASSERT_EQ(fired.size(), 4u);
  EXPECT_EQ(fired[0], 3);
  EXPECT_EQ(fired[3], 10);
}

TEST(Trainer, RebuildScheduleAdvancesDuringTraining) {
  const auto data = tiny_data(15);
  NetworkConfig net_cfg = tiny_net_config(data);
  net_cfg.layers[0].rebuild.initial_period = 10;
  net_cfg.layers[0].rebuild.decay = 0.1;
  Network net(net_cfg, 1);
  TrainerConfig cfg;
  cfg.batch_size = 16;
  cfg.num_threads = 1;
  Trainer trainer(net, cfg);
  trainer.train(data.train, 50);
  EXPECT_GE(net.output_layer().rebuild_count(), 2);
  EXPECT_LE(net.output_layer().rebuild_count(), 5);
}

TEST(Trainer, TimeBreakdownAndUtilizationArePopulated) {
  const auto data = tiny_data(17);
  NetworkConfig net_cfg = tiny_net_config(data);
  Network net(net_cfg, 2);
  TrainerConfig cfg;
  cfg.batch_size = 32;
  cfg.num_threads = 2;
  Trainer trainer(net, cfg);
  trainer.train(data.train, 20);
  const auto& b = trainer.time_breakdown();
  EXPECT_GT(b.total_seconds, 0.0);
  EXPECT_GT(b.batch_compute_seconds, 0.0);
  EXPECT_GT(b.update_seconds, 0.0);
  EXPECT_LE(b.batch_compute_seconds + b.update_seconds + b.rebuild_seconds,
            b.total_seconds * 1.05);
  const double util = trainer.core_utilization();
  EXPECT_GT(util, 0.05);
  EXPECT_LE(util, 1.05);
  EXPECT_GT(net.output_layer().sampling_seconds(), 0.0);
  EXPECT_GT(net.output_layer().compute_seconds(), 0.0);
}

TEST(Trainer, BatchSizeValidation) {
  const auto data = tiny_data(19);
  NetworkConfig net_cfg = tiny_net_config(data);
  Network net(net_cfg, 1);
  TrainerConfig cfg;
  cfg.batch_size = 1'000;  // > max_batch_size (32)
  EXPECT_THROW(Trainer(net, cfg), Error);
}

TEST(Trainer, ActiveFractionIsSmall) {
  // The headline mechanism: far fewer than all neurons are active.
  const auto data = tiny_data(21);
  NetworkConfig net_cfg = tiny_net_config(data, /*target=*/24);
  Network net(net_cfg, 2);
  TrainerConfig cfg;
  cfg.batch_size = 32;
  cfg.num_threads = 2;
  Trainer trainer(net, cfg);
  trainer.train(data.train, 30);
  const double frac = net.output_layer().average_active_fraction();
  EXPECT_GT(frac, 0.0);
  EXPECT_LT(frac, 0.45);  // 24-ish (+labels) of 80 classes
}

}  // namespace
}  // namespace slide
