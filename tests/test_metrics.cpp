// Metrics tests: P@1 evaluation semantics, the convergence recorder, the
// markdown table printer and the CPU-efficiency probe plumbing.
#include <gtest/gtest.h>

#include <sstream>

#include "core/trainer.h"
#include "data/synthetic.h"
#include "dist/transport.h"
#include "metrics/convergence.h"
#include "metrics/instrumentation.h"
#include "metrics/metrics.h"
#include "metrics/prometheus.h"
#include "metrics/table_printer.h"
#include "serve/engine.h"

namespace slide {
namespace {

TEST(ConvergenceRecorder, ThresholdQueries) {
  ConvergenceRecorder rec("slide");
  rec.add({.iteration = 10, .seconds = 1.0, .accuracy = 0.1});
  rec.add({.iteration = 20, .seconds = 2.0, .accuracy = 0.3});
  rec.add({.iteration = 30, .seconds = 3.0, .accuracy = 0.5});
  EXPECT_DOUBLE_EQ(rec.seconds_to_accuracy(0.25), 2.0);
  EXPECT_EQ(rec.iterations_to_accuracy(0.25), 20);
  EXPECT_DOUBLE_EQ(rec.seconds_to_accuracy(0.9), -1.0);
  EXPECT_EQ(rec.iterations_to_accuracy(0.9), -1);
  EXPECT_DOUBLE_EQ(rec.best_accuracy(), 0.5);
}

TEST(ConvergenceRecorder, MarkdownAndCsvContainData) {
  ConvergenceRecorder rec("run");
  rec.add({.iteration = 5, .seconds = 0.5, .accuracy = 0.25,
           .active_fraction = 0.01});
  const std::string md = rec.to_markdown();
  EXPECT_NE(md.find("0.2500"), std::string::npos);
  const std::string csv = rec.to_csv();
  EXPECT_NE(csv.find("run,5,"), std::string::npos);
}

TEST(ConvergenceRecorder, MergePrintsAllSeries) {
  ConvergenceRecorder a("slide"), b("dense");
  a.add({.iteration = 1, .seconds = 0.1, .accuracy = 0.2});
  a.add({.iteration = 2, .seconds = 0.2, .accuracy = 0.4});
  b.add({.iteration = 1, .seconds = 0.3, .accuracy = 0.1});
  const std::string md = merge_to_markdown({&a, &b});
  EXPECT_NE(md.find("slide"), std::string::npos);
  EXPECT_NE(md.find("dense"), std::string::npos);
  EXPECT_NE(md.find("0.4000"), std::string::npos);
}

TEST(MarkdownTable, RendersAlignedTable) {
  MarkdownTable t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "23456"});
  const std::string s = t.str();
  EXPECT_NE(s.find("| name"), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("23456"), std::string::npos);
  // Header separator present.
  EXPECT_NE(s.find("---"), std::string::npos);
}

TEST(MarkdownTable, FormattersBehave) {
  EXPECT_EQ(fmt(1.23456, 2), "1.23");
  EXPECT_EQ(fmt_pct(0.5, 1), "50.0%");
  EXPECT_EQ(fmt_int(42), "42");
}

TEST(Evaluate, ExactP1IsCorrectOnHandmadeModel) {
  // Train nothing: accuracy of an untrained model on 60 labels should be
  // near chance; after planting a strong association it should be high.
  SyntheticConfig dcfg;
  dcfg.feature_dim = 200;
  dcfg.label_dim = 40;
  dcfg.num_train = 300;
  dcfg.num_test = 100;
  dcfg.features_per_label = 8;
  dcfg.active_per_label = 5;
  dcfg.noise_features = 1;
  const auto data = make_synthetic_xc(dcfg);

  HashFamilyConfig family;
  family.kind = HashFamilyKind::kSimhash;
  family.k = 4;
  family.l = 8;
  NetworkConfig cfg = make_paper_network(200, 40, family, 12, 8);
  cfg.max_batch_size = 16;
  cfg.layers[0].table.range_pow = 8;
  Network net(cfg, 2);
  ThreadPool pool(2);

  // Untrained accuracy is not ~1/40: labels are Zipf-skewed and samples are
  // multi-label, so a constant head-label prediction already scores ~0.25.
  const double untrained =
      evaluate_p_at_1(net, data.test, pool, {.exact = true});
  EXPECT_LT(untrained, 0.45);

  TrainerConfig tc;
  tc.batch_size = 16;
  tc.num_threads = 2;
  tc.learning_rate = 5e-3f;
  Trainer trainer(net, tc);
  trainer.train(data.train, 150);
  const double trained =
      evaluate_p_at_1(net, data.test, pool, {.exact = true});
  EXPECT_GT(trained, untrained + 0.2);

  // max_samples caps work.
  const double capped = evaluate_p_at_1(
      net, data.test, pool, {.exact = true, .max_samples = 10});
  EXPECT_GE(capped, 0.0);
  EXPECT_LE(capped, 1.0);
}

TEST(Evaluate, PAtKIsMonotoneAndBounded) {
  SyntheticConfig dcfg;
  dcfg.feature_dim = 200;
  dcfg.label_dim = 40;
  dcfg.num_train = 300;
  dcfg.num_test = 100;
  dcfg.min_labels_per_sample = 3;
  dcfg.max_labels_per_sample = 5;
  const auto data = make_synthetic_xc(dcfg);
  HashFamilyConfig family;
  family.kind = HashFamilyKind::kSimhash;
  family.k = 4;
  family.l = 8;
  NetworkConfig cfg = make_paper_network(200, 40, family, 12, 8);
  cfg.max_batch_size = 16;
  cfg.layers[0].table.range_pow = 8;
  Network net(cfg, 2);
  TrainerConfig tc;
  tc.batch_size = 16;
  tc.num_threads = 2;
  tc.learning_rate = 5e-3f;
  Trainer trainer(net, tc);
  trainer.train(data.train, 120);

  const double p1 = evaluate_p_at_k(net, data.test, trainer.pool(), 1,
                                    {.exact = true});
  const double p1_ref =
      evaluate_p_at_1(net, data.test, trainer.pool(), {.exact = true});
  EXPECT_NEAR(p1, p1_ref, 1e-9);  // P@1 definitions agree

  const double p5 = evaluate_p_at_k(net, data.test, trainer.pool(), 5,
                                    {.exact = true});
  EXPECT_GE(p5, 0.0);
  EXPECT_LE(p5, 1.0);
  // With >=3 labels per sample a trained model fills several top-5 slots.
  EXPECT_GT(p5, 0.2);
}

TEST(Evaluate, DensePAtKMatchesNetworkShape) {
  SyntheticConfig dcfg;
  dcfg.feature_dim = 150;
  dcfg.label_dim = 30;
  dcfg.num_train = 200;
  dcfg.num_test = 60;
  const auto data = make_synthetic_xc(dcfg);
  DenseNetwork::Config cfg;
  cfg.input_dim = 150;
  cfg.hidden_units = 8;
  cfg.output_units = 30;
  cfg.max_batch_size = 16;
  DenseNetwork net(cfg, 2);
  ThreadPool pool(2);
  const double p1 = evaluate_p_at_k(net, data.test, pool, 1);
  const double p1_ref = evaluate_p_at_1(net, data.test, pool);
  EXPECT_NEAR(p1, p1_ref, 1e-9);
  EXPECT_THROW(evaluate_p_at_k(net, data.test, pool, 0), Error);
}

TEST(EfficiencyProbe, ProducesConsistentReport) {
  SyntheticConfig dcfg;
  dcfg.feature_dim = 200;
  dcfg.label_dim = 40;
  dcfg.num_train = 200;
  dcfg.num_test = 10;
  const auto data = make_synthetic_xc(dcfg);
  HashFamilyConfig family;
  family.kind = HashFamilyKind::kSimhash;
  family.k = 4;
  family.l = 8;
  NetworkConfig cfg = make_paper_network(200, 40, family, 12, 8);
  cfg.max_batch_size = 16;
  cfg.layers[0].table.range_pow = 8;
  Network net(cfg, 2);
  TrainerConfig tc;
  tc.batch_size = 16;
  tc.num_threads = 2;
  Trainer trainer(net, tc);

  EfficiencyProbe probe(trainer);
  trainer.train(data.train, 15);
  const CpuEfficiencyReport report = probe.finish();
  EXPECT_EQ(report.threads, 2);
  EXPECT_GT(report.wall_seconds, 0.0);
  EXPECT_GT(report.core_utilization, 0.0);
  EXPECT_LE(report.core_utilization, 1.1);
  EXPECT_GT(report.compute_fraction, 0.0);
  EXPECT_LE(report.compute_fraction + report.update_fraction +
                report.rebuild_fraction,
            1.05);
  EXPECT_GT(report.lsh_sampling_seconds, 0.0);
  EXPECT_GT(report.layer_compute_seconds, 0.0);
  const std::string row = report.to_markdown_row("slide");
  EXPECT_NE(row.find("slide"), std::string::npos);
  EXPECT_FALSE(CpuEfficiencyReport::markdown_header().empty());
}


// ---- Prometheus exposition ------------------------------------------------

TEST(PromWriter, EscapesLabelValuesAndHelpText) {
  EXPECT_EQ(PromWriter::escape_label_value("plain"), "plain");
  EXPECT_EQ(PromWriter::escape_label_value("a\\b"), "a\\\\b");
  EXPECT_EQ(PromWriter::escape_label_value("say \"hi\""),
            "say \\\"hi\\\"");
  EXPECT_EQ(PromWriter::escape_label_value("line\nbreak"),
            "line\\nbreak");
  // HELP escapes backslash and newline but leaves quotes alone.
  EXPECT_EQ(PromWriter::escape_help("a\nb\\c \"q\""),
            "a\\nb\\\\c \"q\"");
}

TEST(PromWriter, FormatsIntegersPlainAndDoublesCompact) {
  EXPECT_EQ(PromWriter::format_value(0.0), "0");
  EXPECT_EQ(PromWriter::format_value(42.0), "42");
  EXPECT_EQ(PromWriter::format_value(-3.0), "-3");
  EXPECT_EQ(PromWriter::format_value(0.5), "0.5");
  const std::string big = PromWriter::format_value(1e18);
  EXPECT_NE(big.find('e'), std::string::npos);  // large: scientific is fine
}

TEST(PromWriter, SampleRendersLabelsInOrder) {
  PromWriter w;
  w.family("x_total", "help text", "counter");
  w.sample("x_total", {{"lane", "batch"}, {"reason", "expired"}}, 7);
  EXPECT_EQ(w.str(),
            "# HELP x_total help text\n"
            "# TYPE x_total counter\n"
            "x_total{lane=\"batch\",reason=\"expired\"} 7\n");
}

TEST(PromWriter, HistogramBucketsAreCumulativeAndCountMatchesInf) {
  LatencyHistogram hist;
  // Spread observations across several octaves, incl. the sub-1us clamp.
  for (int i = 0; i < 10; ++i) hist.record(0.5);
  for (int i = 0; i < 20; ++i) hist.record(3.0);
  for (int i = 0; i < 30; ++i) hist.record(100.0);
  for (int i = 0; i < 5; ++i) hist.record(1e7);  // 10s
  PromWriter w;
  w.family("lat_seconds", "latency", "histogram");
  w.histogram_us("lat_seconds", {{"lane", "default"}}, hist.snapshot());
  const std::string text = w.str();

  // Parse the bucket series back out and check cumulativity.
  std::istringstream lines(text);
  std::string line;
  double prev = -1.0;
  double inf_value = -1.0, count_value = -1.0, sum_value = -1.0;
  int buckets_seen = 0;
  while (std::getline(lines, line)) {
    if (line.rfind("lat_seconds_bucket", 0) == 0) {
      const double v = std::stod(line.substr(line.rfind(' ') + 1));
      EXPECT_GE(v, prev) << line;  // cumulative: never decreases
      prev = v;
      ++buckets_seen;
      if (line.find("le=\"+Inf\"") != std::string::npos) inf_value = v;
    } else if (line.rfind("lat_seconds_count", 0) == 0) {
      count_value = std::stod(line.substr(line.rfind(' ') + 1));
    } else if (line.rfind("lat_seconds_sum", 0) == 0) {
      sum_value = std::stod(line.substr(line.rfind(' ') + 1));
    }
  }
  EXPECT_EQ(buckets_seen, LatencyHistogram::kOctaves + 1);
  EXPECT_EQ(inf_value, 65.0);
  EXPECT_EQ(count_value, inf_value);  // internal consistency
  EXPECT_NEAR(sum_value, (10 * 0.5 + 20 * 3.0 + 30 * 100.0 + 5 * 1e7) * 1e-6,
              1e-6);
}

TEST(RenderPrometheus, ExposesServeFamiliesWithAllLaneSeries) {
  ServeStats stats;
  stats.submitted = 100;
  stats.rejected = 3;
  stats.errors = 1;
  stats.lanes[lane_index(Priority::kInteractive)].completed = 60;
  stats.lanes[lane_index(Priority::kBatch)].shed_expired = 7;
  stats.lanes[lane_index(Priority::kBatch)].queue_depth = 4;
  stats.lanes[lane_index(Priority::kDefault)].deadline_misses = 2;
  const std::string text = render_prometheus(stats);

  EXPECT_NE(text.find("# TYPE slide_serve_submitted_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("slide_serve_submitted_total 100"), std::string::npos);
  EXPECT_NE(
      text.find("slide_serve_completed_total{lane=\"interactive\"} 60"),
      std::string::npos);
  EXPECT_NE(text.find(
                "slide_serve_shed_total{lane=\"batch\",reason=\"expired\"} 7"),
            std::string::npos);
  // Zero-valued series are exported too (no appearing-mid-query gaps).
  EXPECT_NE(
      text.find(
          "slide_serve_shed_total{lane=\"interactive\",reason=\"admission\"} 0"),
      std::string::npos);
  EXPECT_NE(text.find("slide_serve_queue_depth{lane=\"batch\"} 4"),
            std::string::npos);
  EXPECT_NE(
      text.find("slide_serve_deadline_miss_total{lane=\"default\"} 2"),
      std::string::npos);
  EXPECT_NE(
      text.find("slide_serve_latency_seconds_bucket{lane=\"default\",le="),
      std::string::npos);
  // Gated families stay out when the served model has no such layers.
  EXPECT_EQ(text.find("slide_dist_wire_bytes_total"), std::string::npos);
  EXPECT_EQ(text.find("slide_retrieval_"), std::string::npos);
  // ...and in when flagged.
  stats.distributed = true;
  stats.wire_bytes_sent = 12;
  stats.adaptive_retrieval = true;
  const std::string dist_text = render_prometheus(stats);
  EXPECT_NE(
      dist_text.find("slide_dist_wire_bytes_total{direction=\"sent\"} 12"),
      std::string::npos);
  EXPECT_NE(dist_text.find("slide_retrieval_escalations_total"),
            std::string::npos);
}

TEST(RenderPrometheus, CountersAreMonotonicAcrossReadings) {
  // Two successive stats readings render values that never go backwards —
  // the renderer is a pure function, so monotonicity reduces to the
  // counters themselves, but this pins the end-to-end property a scraper
  // relies on.
  ServeStats before;
  before.submitted = 10;
  before.lanes[0].completed = 5;
  ServeStats after = before;
  after.submitted = 25;
  after.lanes[0].completed = 11;
  const std::string t0 = render_prometheus(before);
  const std::string t1 = render_prometheus(after);
  auto value_of = [](const std::string& text, const std::string& series) {
    // Anchor on a sample line ("\nseries value"), not the HELP/TYPE text.
    const auto pos = text.find("\n" + series + " ");
    EXPECT_NE(pos, std::string::npos) << series;
    return std::stod(text.substr(pos + 1 + series.size() + 1));
  };
  EXPECT_LE(value_of(t0, "slide_serve_submitted_total"),
            value_of(t1, "slide_serve_submitted_total"));
  EXPECT_LE(value_of(t0, "slide_serve_completed_total{lane=\"interactive\"}"),
            value_of(t1, "slide_serve_completed_total{lane=\"interactive\"}"));
}

TEST(MetricsServer, ServesScrapeOverHttp) {
  MetricsServer server(0, [] {
    ServeStats stats;
    stats.submitted = 5;
    return render_prometheus(stats);
  });
  ASSERT_GT(server.port(), 0);
  // Scrape it with a raw tcp client through the same dist plumbing.
  auto conn = dist::connect_endpoint(
      "tcp:127.0.0.1:" + std::to_string(server.port()), 2000);
  auto* tcp = dynamic_cast<dist::TcpTransport*>(conn.get());
  ASSERT_NE(tcp, nullptr);
  const std::string request = "GET /metrics HTTP/1.0\r\n\r\n";
  tcp->send_raw(request.data(), request.size());
  std::string response;
  try {
    char buf[4096];
    while (true) response.append(buf, tcp->recv_raw(buf, sizeof(buf), 2000));
  } catch (const dist::TransportClosed&) {
    // Connection: close terminates the response.
  }
  EXPECT_NE(response.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_NE(response.find("text/plain; version=0.0.4"), std::string::npos);
  EXPECT_NE(response.find("slide_serve_submitted_total 5"),
            std::string::npos);
  server.stop();  // idempotent with the destructor
}

}  // namespace
}  // namespace slide
