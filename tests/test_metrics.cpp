// Metrics tests: P@1 evaluation semantics, the convergence recorder, the
// markdown table printer and the CPU-efficiency probe plumbing.
#include <gtest/gtest.h>

#include <sstream>

#include "core/trainer.h"
#include "data/synthetic.h"
#include "metrics/convergence.h"
#include "metrics/instrumentation.h"
#include "metrics/metrics.h"
#include "metrics/table_printer.h"

namespace slide {
namespace {

TEST(ConvergenceRecorder, ThresholdQueries) {
  ConvergenceRecorder rec("slide");
  rec.add({.iteration = 10, .seconds = 1.0, .accuracy = 0.1});
  rec.add({.iteration = 20, .seconds = 2.0, .accuracy = 0.3});
  rec.add({.iteration = 30, .seconds = 3.0, .accuracy = 0.5});
  EXPECT_DOUBLE_EQ(rec.seconds_to_accuracy(0.25), 2.0);
  EXPECT_EQ(rec.iterations_to_accuracy(0.25), 20);
  EXPECT_DOUBLE_EQ(rec.seconds_to_accuracy(0.9), -1.0);
  EXPECT_EQ(rec.iterations_to_accuracy(0.9), -1);
  EXPECT_DOUBLE_EQ(rec.best_accuracy(), 0.5);
}

TEST(ConvergenceRecorder, MarkdownAndCsvContainData) {
  ConvergenceRecorder rec("run");
  rec.add({.iteration = 5, .seconds = 0.5, .accuracy = 0.25,
           .active_fraction = 0.01});
  const std::string md = rec.to_markdown();
  EXPECT_NE(md.find("0.2500"), std::string::npos);
  const std::string csv = rec.to_csv();
  EXPECT_NE(csv.find("run,5,"), std::string::npos);
}

TEST(ConvergenceRecorder, MergePrintsAllSeries) {
  ConvergenceRecorder a("slide"), b("dense");
  a.add({.iteration = 1, .seconds = 0.1, .accuracy = 0.2});
  a.add({.iteration = 2, .seconds = 0.2, .accuracy = 0.4});
  b.add({.iteration = 1, .seconds = 0.3, .accuracy = 0.1});
  const std::string md = merge_to_markdown({&a, &b});
  EXPECT_NE(md.find("slide"), std::string::npos);
  EXPECT_NE(md.find("dense"), std::string::npos);
  EXPECT_NE(md.find("0.4000"), std::string::npos);
}

TEST(MarkdownTable, RendersAlignedTable) {
  MarkdownTable t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "23456"});
  const std::string s = t.str();
  EXPECT_NE(s.find("| name"), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("23456"), std::string::npos);
  // Header separator present.
  EXPECT_NE(s.find("---"), std::string::npos);
}

TEST(MarkdownTable, FormattersBehave) {
  EXPECT_EQ(fmt(1.23456, 2), "1.23");
  EXPECT_EQ(fmt_pct(0.5, 1), "50.0%");
  EXPECT_EQ(fmt_int(42), "42");
}

TEST(Evaluate, ExactP1IsCorrectOnHandmadeModel) {
  // Train nothing: accuracy of an untrained model on 60 labels should be
  // near chance; after planting a strong association it should be high.
  SyntheticConfig dcfg;
  dcfg.feature_dim = 200;
  dcfg.label_dim = 40;
  dcfg.num_train = 300;
  dcfg.num_test = 100;
  dcfg.features_per_label = 8;
  dcfg.active_per_label = 5;
  dcfg.noise_features = 1;
  const auto data = make_synthetic_xc(dcfg);

  HashFamilyConfig family;
  family.kind = HashFamilyKind::kSimhash;
  family.k = 4;
  family.l = 8;
  NetworkConfig cfg = make_paper_network(200, 40, family, 12, 8);
  cfg.max_batch_size = 16;
  cfg.layers[0].table.range_pow = 8;
  Network net(cfg, 2);
  ThreadPool pool(2);

  // Untrained accuracy is not ~1/40: labels are Zipf-skewed and samples are
  // multi-label, so a constant head-label prediction already scores ~0.25.
  const double untrained =
      evaluate_p_at_1(net, data.test, pool, {.exact = true});
  EXPECT_LT(untrained, 0.45);

  TrainerConfig tc;
  tc.batch_size = 16;
  tc.num_threads = 2;
  tc.learning_rate = 5e-3f;
  Trainer trainer(net, tc);
  trainer.train(data.train, 150);
  const double trained =
      evaluate_p_at_1(net, data.test, pool, {.exact = true});
  EXPECT_GT(trained, untrained + 0.2);

  // max_samples caps work.
  const double capped = evaluate_p_at_1(
      net, data.test, pool, {.exact = true, .max_samples = 10});
  EXPECT_GE(capped, 0.0);
  EXPECT_LE(capped, 1.0);
}

TEST(Evaluate, PAtKIsMonotoneAndBounded) {
  SyntheticConfig dcfg;
  dcfg.feature_dim = 200;
  dcfg.label_dim = 40;
  dcfg.num_train = 300;
  dcfg.num_test = 100;
  dcfg.min_labels_per_sample = 3;
  dcfg.max_labels_per_sample = 5;
  const auto data = make_synthetic_xc(dcfg);
  HashFamilyConfig family;
  family.kind = HashFamilyKind::kSimhash;
  family.k = 4;
  family.l = 8;
  NetworkConfig cfg = make_paper_network(200, 40, family, 12, 8);
  cfg.max_batch_size = 16;
  cfg.layers[0].table.range_pow = 8;
  Network net(cfg, 2);
  TrainerConfig tc;
  tc.batch_size = 16;
  tc.num_threads = 2;
  tc.learning_rate = 5e-3f;
  Trainer trainer(net, tc);
  trainer.train(data.train, 120);

  const double p1 = evaluate_p_at_k(net, data.test, trainer.pool(), 1,
                                    {.exact = true});
  const double p1_ref =
      evaluate_p_at_1(net, data.test, trainer.pool(), {.exact = true});
  EXPECT_NEAR(p1, p1_ref, 1e-9);  // P@1 definitions agree

  const double p5 = evaluate_p_at_k(net, data.test, trainer.pool(), 5,
                                    {.exact = true});
  EXPECT_GE(p5, 0.0);
  EXPECT_LE(p5, 1.0);
  // With >=3 labels per sample a trained model fills several top-5 slots.
  EXPECT_GT(p5, 0.2);
}

TEST(Evaluate, DensePAtKMatchesNetworkShape) {
  SyntheticConfig dcfg;
  dcfg.feature_dim = 150;
  dcfg.label_dim = 30;
  dcfg.num_train = 200;
  dcfg.num_test = 60;
  const auto data = make_synthetic_xc(dcfg);
  DenseNetwork::Config cfg;
  cfg.input_dim = 150;
  cfg.hidden_units = 8;
  cfg.output_units = 30;
  cfg.max_batch_size = 16;
  DenseNetwork net(cfg, 2);
  ThreadPool pool(2);
  const double p1 = evaluate_p_at_k(net, data.test, pool, 1);
  const double p1_ref = evaluate_p_at_1(net, data.test, pool);
  EXPECT_NEAR(p1, p1_ref, 1e-9);
  EXPECT_THROW(evaluate_p_at_k(net, data.test, pool, 0), Error);
}

TEST(EfficiencyProbe, ProducesConsistentReport) {
  SyntheticConfig dcfg;
  dcfg.feature_dim = 200;
  dcfg.label_dim = 40;
  dcfg.num_train = 200;
  dcfg.num_test = 10;
  const auto data = make_synthetic_xc(dcfg);
  HashFamilyConfig family;
  family.kind = HashFamilyKind::kSimhash;
  family.k = 4;
  family.l = 8;
  NetworkConfig cfg = make_paper_network(200, 40, family, 12, 8);
  cfg.max_batch_size = 16;
  cfg.layers[0].table.range_pow = 8;
  Network net(cfg, 2);
  TrainerConfig tc;
  tc.batch_size = 16;
  tc.num_threads = 2;
  Trainer trainer(net, tc);

  EfficiencyProbe probe(trainer);
  trainer.train(data.train, 15);
  const CpuEfficiencyReport report = probe.finish();
  EXPECT_EQ(report.threads, 2);
  EXPECT_GT(report.wall_seconds, 0.0);
  EXPECT_GT(report.core_utilization, 0.0);
  EXPECT_LE(report.core_utilization, 1.1);
  EXPECT_GT(report.compute_fraction, 0.0);
  EXPECT_LE(report.compute_fraction + report.update_fraction +
                report.rebuild_fraction,
            1.05);
  EXPECT_GT(report.lsh_sampling_seconds, 0.0);
  EXPECT_GT(report.layer_compute_seconds, 0.0);
  const std::string row = report.to_markdown_row("slide");
  EXPECT_NE(row.find("slide"), std::string::npos);
  EXPECT_FALSE(CpuEfficiencyReport::markdown_header().empty());
}

}  // namespace
}  // namespace slide
