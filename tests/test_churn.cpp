// Dynamic label lifecycle tests: online growth (add_units) and retirement
// (retire_units tombstones) of output neurons in monolithic, sharded, and
// distributed layers; checkpoint-v5 round-trips (appended rows + tombstone
// persistence, shard-count invariance); retriever memory accounting in
// Network::memory_footprint; paged top-k stability across growth; the
// InferenceEngine online-update API; and churn-while-serving stress (the
// TSan CI target).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include "core/builder.h"
#include "core/serialize.h"
#include "core/sharded_layer.h"
#include "core/trainer.h"
#include "data/synthetic.h"
#include "dist/distributed_layer.h"
#include "dist/worker.h"
#include "metrics/prometheus.h"
#include "serve/engine.h"

namespace slide {
namespace {

using retrieval::RetrieverKind;
using namespace std::chrono_literals;

const RetrieverKind kAllKinds[] = {RetrieverKind::kLsh, RetrieverKind::kExact,
                                   RetrieverKind::kHnsw};

SyntheticDataset tiny_data(std::uint64_t seed = 911) {
  SyntheticConfig cfg;
  cfg.feature_dim = 64;
  cfg.label_dim = 48;
  cfg.num_train = 200;
  cfg.num_test = 50;
  cfg.features_per_label = 8;
  cfg.active_per_label = 5;
  cfg.seed = seed;
  return make_synthetic_xc(cfg);
}

HashFamilyConfig small_family() {
  HashFamilyConfig family;
  family.kind = HashFamilyKind::kSimhash;
  family.k = 4;
  family.l = 10;
  return family;
}

NetworkConfig net_config(const SyntheticDataset& data,
                         RetrieverKind kind = RetrieverKind::kLsh,
                         int shards = 0,
                         MaintenancePolicy policy = MaintenancePolicy::kSync) {
  NetworkBuilder b(data.train.feature_dim());
  b.dense(16).sampled(data.train.label_dim(), small_family(), 16);
  b.table({.range_pow = 8, .bucket_size = 32});
  b.retriever(kind);
  if (kind == RetrieverKind::kHnsw)
    b.hnsw({.m = 6, .ef_construction = 32, .ef_search = 24});
  b.maintenance(policy);
  if (shards > 0) b.shards(shards);
  b.max_batch(32).seed(123);
  return b.to_config();
}

void train(Network& net, const SyntheticDataset& data, long iterations,
           int threads = 2) {
  TrainerConfig tcfg;
  tcfg.batch_size = 16;
  tcfg.num_threads = threads;
  tcfg.learning_rate = 1e-2f;
  Trainer trainer(net, tcfg);
  trainer.train(data.train, iterations);
}

// ---------------------------------------------------------------------------
// Growth
// ---------------------------------------------------------------------------

TEST(Churn, AddUnitsGrowsOutputAndNewLabelsAreRetrievable) {
  const auto data = tiny_data();
  for (RetrieverKind kind : kAllKinds) {
    Network net(net_config(data, kind), 2);
    train(net, data, 20);
    const Index before = net.output_dim();
    const Index first = net.add_output_units(8);
    EXPECT_EQ(first, before) << to_string(kind);
    EXPECT_EQ(net.output_dim(), before + 8) << to_string(kind);
    EXPECT_EQ(net.output_layer().appended_units(), 8) << to_string(kind);
    // The stored config tracks the live width (clones, checkpoints).
    EXPECT_EQ(net.config().layers.back().units, before + 8);

    // New rows must be scorable through the exact path immediately, and the
    // sampled path must not crash on the wider universe.
    InferenceContext ctx(net, 7);
    const auto exact = net.predict_topk(data.test[0].features,
                                        ctx, static_cast<int>(before + 8),
                                        /*exact=*/true);
    EXPECT_EQ(exact.size(), static_cast<std::size_t>(before + 8))
        << to_string(kind);
    const auto sampled = net.predict_topk(data.test[0].features, ctx, 5);
    for (Index label : sampled) EXPECT_LT(label, before + 8);

    // Training straight through the grown width must work (labels may now
    // reference the new units).
    train(net, data, 5);
  }
}

TEST(Churn, AddUnitsRejectsUnhashedAndNonPositive) {
  const auto data = tiny_data();
  Network net(net_config(data), 2);
  EXPECT_THROW(net.add_output_units(0), Error);
  NetworkBuilder b(data.train.feature_dim());
  b.dense(16).dense(data.train.label_dim(), Activation::kSoftmax);
  Network dense_net(b.to_config(), 2);
  EXPECT_THROW(dense_net.add_output_units(4), Error);
}

// ---------------------------------------------------------------------------
// Retirement
// ---------------------------------------------------------------------------

TEST(Churn, RetiredUnitsVanishFromTopkOnEveryBackend) {
  const auto data = tiny_data();
  for (RetrieverKind kind : kAllKinds) {
    Network net(net_config(data, kind), 2);
    train(net, data, 30);
    InferenceContext ctx(net, 7);
    const auto before =
        net.predict_topk(data.test[0].features, ctx, 3, /*exact=*/true);
    ASSERT_FALSE(before.empty());
    const Index victim = before[0];

    net.retire_output_units(std::vector<Index>{victim});
    EXPECT_EQ(net.output_layer().retired_count(), 1) << to_string(kind);
    EXPECT_EQ(net.output_layer().retired_unit_ids(),
              std::vector<Index>{victim});

    // Exact and sampled paths both mask the tombstoned id.
    for (std::size_t i = 0; i < 10; ++i) {
      const auto exact =
          net.predict_topk(data.test[i].features, ctx, 10, /*exact=*/true);
      EXPECT_EQ(std::count(exact.begin(), exact.end(), victim), 0)
          << to_string(kind);
      const auto sampled = net.predict_topk(data.test[i].features, ctx, 10);
      EXPECT_EQ(std::count(sampled.begin(), sampled.end(), victim), 0)
          << to_string(kind);
    }

    // Rows are masked, not compacted: the other ids are unchanged.
    EXPECT_EQ(net.output_dim(), data.train.label_dim());
    EXPECT_THROW(
        net.retire_output_units(std::vector<Index>{net.output_dim()}), Error);
  }
}

// ---------------------------------------------------------------------------
// Checkpoint v5: tombstone persistence + growth round-trips (satellite 2)
// ---------------------------------------------------------------------------

TEST(Churn, RetireSaveLoadRoundTripAllBackends) {
  const auto data = tiny_data();
  for (RetrieverKind kind : kAllKinds) {
    Network net(net_config(data, kind), 2);
    train(net, data, 30);
    const std::vector<Index> victims = {3, 17, 40};
    net.retire_output_units(victims);

    std::stringstream buffer(std::ios::in | std::ios::out |
                             std::ios::binary);
    save_weights(net, buffer);
    Network restored(net_config(data, kind), 2);
    load_weights(restored, buffer);

    // The mask survived the reboot: removed ids must NOT resurrect.
    EXPECT_EQ(restored.output_layer().retired_count(), 3) << to_string(kind);
    EXPECT_EQ(restored.output_layer().retired_unit_ids(), victims);
    InferenceContext ctx(restored, 7);
    for (std::size_t i = 0; i < 10; ++i) {
      const auto exact = restored.predict_topk(data.test[i].features, ctx,
                                               10, /*exact=*/true);
      const auto sampled =
          restored.predict_topk(data.test[i].features, ctx, 10);
      for (Index victim : victims) {
        EXPECT_EQ(std::count(exact.begin(), exact.end(), victim), 0)
            << to_string(kind);
        EXPECT_EQ(std::count(sampled.begin(), sampled.end(), victim), 0)
            << to_string(kind);
      }
    }
  }
}

TEST(Churn, GrownCheckpointLoadsIntoOriginalConfigAndAcrossShardCounts) {
  const auto data = tiny_data();
  NetworkConfig cfg = net_config(data, RetrieverKind::kLsh, /*shards=*/2);
  Network src(cfg, 2);
  train(src, data, 30);
  src.add_output_units(6);
  src.retire_output_units(std::vector<Index>{5, 11});
  train(src, data, 5);
  src.flush_maintenance();

  std::stringstream buffer(std::ios::in | std::ios::out | std::ios::binary);
  save_weights(src, buffer);
  const std::string bytes = buffer.str();

  InferenceContext src_ctx(src, 7);
  std::vector<std::vector<Index>> want;
  for (std::size_t i = 0; i < 20; ++i)
    want.push_back(src.predict_topk(data.test[i].features, src_ctx, 5,
                                    /*exact=*/true));

  // A network built from the ORIGINAL (pre-growth) config re-grows on
  // load; shard count of the target may differ from the writer's
  // (checkpoint-v3 scatter), and the tombstones must land either way.
  for (int shards : {0, 2, 3}) {
    NetworkConfig target = net_config(data, RetrieverKind::kLsh, shards);
    std::stringstream in(bytes);
    Network restored(target, 2);
    load_weights(restored, in);
    EXPECT_EQ(restored.output_dim(), data.train.label_dim() + 6)
        << shards << " shards";
    EXPECT_EQ(restored.output_layer().retired_count(), 2);
    EXPECT_EQ(restored.output_layer().retired_unit_ids(),
              (std::vector<Index>{5, 11}));
    InferenceContext ctx(restored, 7);
    for (std::size_t i = 0; i < 20; ++i) {
      EXPECT_EQ(restored.predict_topk(data.test[i].features, ctx, 5,
                                      /*exact=*/true),
                want[i])
          << shards << " shards, sample " << i;
    }
  }

  // Pre-v5 guarantee: a genuinely mismatched width still throws.
  SyntheticConfig wide_cfg;
  wide_cfg.feature_dim = data.train.feature_dim();
  wide_cfg.label_dim = data.train.label_dim() + 32;
  wide_cfg.num_train = 10;
  wide_cfg.num_test = 2;
  wide_cfg.seed = 1;
  const auto wide = make_synthetic_xc(wide_cfg);
  Network too_wide(net_config(wide), 2);
  std::stringstream in(bytes);
  EXPECT_THROW(load_weights(too_wide, in), Error);
}

// ---------------------------------------------------------------------------
// Memory accounting (satellite 1)
// ---------------------------------------------------------------------------

TEST(Churn, FootprintIncludesRetrieverBytes) {
  const auto data = tiny_data();
  for (RetrieverKind kind : kAllKinds) {
    Network net(net_config(data, kind), 2);
    const MemoryFootprint f = net.memory_footprint();
    if (kind == RetrieverKind::kExact) {
      // Brute force scores a borrowed row view — no index to report.
      EXPECT_EQ(f.retriever_bytes, 0u);
      continue;
    }
    // LSH buckets / the HNSW graph must show up in the footprint; a report
    // without retriever_bytes silently drops them.
    EXPECT_GT(f.retriever_bytes, 0u) << to_string(kind);
    if (kind == RetrieverKind::kHnsw) {
      // The graph holds neighbor lists for every row — it cannot be
      // smaller than one Index per unit.
      EXPECT_GE(f.retriever_bytes,
                static_cast<std::size_t>(data.train.label_dim()) *
                    sizeof(Index));
    }
  }
}

TEST(Churn, PrometheusExportsMemoryFamilies) {
  const auto data = tiny_data();
  auto net = std::make_shared<Network>(net_config(data, RetrieverKind::kHnsw),
                                       2);
  auto store = std::make_shared<ModelStore>(net);
  ServeConfig scfg;
  scfg.num_workers = 1;
  InferenceEngine engine(store, scfg);
  const ServeStats stats = engine.stats();
  EXPECT_GT(stats.memory.retriever_bytes, 0u);
  EXPECT_GT(stats.memory.master_weight_bytes, 0u);
  const std::string text = render_prometheus(stats);
  EXPECT_NE(text.find("slide_memory_bytes{component=\"retriever\"}"),
            std::string::npos);
  EXPECT_NE(text.find("slide_memory_bytes{component=\"master_weights\"}"),
            std::string::npos);
  engine.stop();
}

// ---------------------------------------------------------------------------
// Paged top-k across growth (satellite 3)
// ---------------------------------------------------------------------------

TEST(Churn, PagedTopkIsStableWhenUniverseGrowsBetweenPages) {
  const auto data = tiny_data();
  Network net(net_config(data, RetrieverKind::kExact), 2);
  train(net, data, 20);
  InferenceContext ctx(net, 7);

  // The one-shot ranking before any churn.
  const auto whole = net.predict_topk(data.test[0].features, ctx, 20,
                                      /*exact=*/true);

  // Page 1, then grow the universe, then page 2: the iterator scored its
  // candidates at creation, so the pages must still concatenate to the
  // pre-growth ranking with no overlap and no phantom new ids.
  TopKIterator it = net.topk_iterator(data.test[0].features, ctx,
                                      /*exact=*/true);
  std::vector<Index> page1, page2;
  ASSERT_TRUE(it.next(10, page1));
  net.add_output_units(4);
  ASSERT_TRUE(it.next(10, page2));
  std::vector<Index> paged = page1;
  paged.insert(paged.end(), page2.begin(), page2.end());
  EXPECT_EQ(paged, whole);

  // A FRESH context sized for the grown net sees the new universe.
  ctx.reset(net);
  const auto grown = net.predict_topk(data.test[0].features, ctx,
                                      static_cast<int>(net.output_dim()),
                                      /*exact=*/true);
  EXPECT_EQ(grown.size(), static_cast<std::size_t>(net.output_dim()));
}

// ---------------------------------------------------------------------------
// Engine online-update API
// ---------------------------------------------------------------------------

TEST(Churn, EngineOnlineUpdateGrowsRetiresAndRepublishes) {
  const auto data = tiny_data();
  auto master = std::make_shared<Network>(net_config(data), 2);
  train(*master, data, 20);
  auto store = std::make_shared<ModelStore>(
      std::make_shared<Network>(net_config(data), 2));
  ServeConfig scfg;
  scfg.num_workers = 1;
  InferenceEngine engine(store, scfg);

  OnlineDelta delta;
  EXPECT_THROW(engine.update(delta), Error);  // not enabled yet

  OnlineUpdateConfig ocfg;
  ocfg.publish_every = 2;
  ocfg.rebuild_threads = 1;
  engine.enable_online_updates(master, ocfg);
  EXPECT_TRUE(engine.online_updates_enabled());
  EXPECT_THROW(engine.enable_online_updates(master, ocfg), Error);

  const std::uint64_t v0 = store->version();
  const auto train_samples = data.train.samples();
  delta.add_units = 4;
  delta.retire = {1, 2};
  delta.samples.assign(train_samples.begin(), train_samples.begin() + 8);
  EXPECT_EQ(engine.update(delta), v0);  // call 1 of 2: no publish yet

  OnlineDelta delta2;
  delta2.samples.assign(train_samples.begin(), train_samples.begin() + 8);
  const std::uint64_t v1 = engine.update(delta2);  // cadence fires
  EXPECT_GT(v1, v0);

  // The published snapshot carries the grown width and the tombstones.
  const auto snap = store->current();
  EXPECT_EQ(snap->network->output_dim(), data.train.label_dim() + 4);
  const ServeStats stats = engine.stats();
  EXPECT_TRUE(stats.online_updates);
  EXPECT_EQ(stats.online_update_calls, 2u);
  EXPECT_EQ(stats.online_publishes, 1u);
  EXPECT_EQ(stats.labels_added, 4u);
  EXPECT_EQ(stats.labels_retired, 2u);
  EXPECT_EQ(stats.snapshot_appended_labels, 4);
  EXPECT_EQ(stats.snapshot_retired_labels, 2);

  // A served request must never see a retired label.
  auto future = engine.submit(data.test[0].features, {.top_k = 10});
  ASSERT_TRUE(future.has_value());
  const Prediction p = future->get();
  for (Index label : p.labels) {
    EXPECT_NE(label, 1);
    EXPECT_NE(label, 2);
  }
  engine.stop();
}

TEST(Churn, PublishNowForcesSnapshotOffCadence) {
  const auto data = tiny_data();
  auto master = std::make_shared<Network>(net_config(data), 2);
  auto store = std::make_shared<ModelStore>(
      std::make_shared<Network>(net_config(data), 2));
  ServeConfig scfg;
  scfg.num_workers = 1;
  InferenceEngine engine(store, scfg);
  OnlineUpdateConfig ocfg;
  ocfg.publish_every = 1000;  // cadence effectively never fires
  engine.enable_online_updates(master, ocfg);
  OnlineDelta delta;
  delta.add_units = 2;
  const std::uint64_t v0 = store->version();
  EXPECT_EQ(engine.update(delta), v0);
  EXPECT_GT(engine.publish_now(), v0);
  EXPECT_EQ(store->current()->network->output_dim(),
            data.train.label_dim() + 2);
  engine.stop();
}

// ---------------------------------------------------------------------------
// Distributed grow/retire RPCs (protocol v3)
// ---------------------------------------------------------------------------

TEST(Churn, DistributedLayerGrowsAndRetiresThroughRpc) {
  const auto data = tiny_data();
  std::vector<std::unique_ptr<dist::InProcessWorker>> workers;
  std::vector<std::string> endpoints;
  for (int s = 0; s < 2; ++s) {
    workers.push_back(
        std::make_unique<dist::InProcessWorker>("tcp:127.0.0.1:0"));
    endpoints.push_back(workers.back()->endpoint());
  }
  {
    NetworkBuilder b(data.train.feature_dim());
    b.dense(16).sampled(data.train.label_dim(), small_family(), 16);
    b.table({.range_pow = 8, .bucket_size = 32});
    b.distributed(endpoints);
    b.max_batch(32).seed(123);
    Network net(b.to_config(), 1);
    auto* layer = dynamic_cast<dist::DistributedSampledLayer*>(
        &net.stack(net.stack_depth() - 1));
    ASSERT_NE(layer, nullptr);

    const Index before = net.output_dim();
    EXPECT_EQ(net.add_output_units(4), before);
    EXPECT_EQ(net.output_dim(), before + 4);
    EXPECT_EQ(layer->appended_units(), 4);

    net.retire_output_units(std::vector<Index>{0, before + 1});
    EXPECT_EQ(layer->retired_count(), 2);
    EXPECT_EQ(layer->retired_unit_ids(),
              (std::vector<Index>{0, before + 1}));

    InferenceContext ctx(net, 7);
    for (std::size_t i = 0; i < 5; ++i) {
      const auto top = net.predict_topk(data.test[i].features, ctx, 10,
                                        /*exact=*/true);
      EXPECT_EQ(std::count(top.begin(), top.end(), Index{0}), 0);
      EXPECT_EQ(std::count(top.begin(), top.end(), before + 1), 0);
      for (Index label : top) EXPECT_LT(label, before + 4);
    }
    layer->shutdown_workers();
  }
  for (auto& w : workers) w->stop();
}

// ---------------------------------------------------------------------------
// Churn-while-serving stress (the TSan CI target, satellite 3)
// ---------------------------------------------------------------------------

TEST(Churn, ConcurrentChurnWhileServing) {
  const auto data = tiny_data();
  auto master = std::make_shared<Network>(
      net_config(data, RetrieverKind::kLsh, 0, MaintenancePolicy::kSync), 2);
  train(*master, data, 20);
  auto store = std::make_shared<ModelStore>(
      std::make_shared<Network>(net_config(data), 2));
  ServeConfig scfg;
  scfg.num_workers = 2;
  scfg.max_batch = 8;
  InferenceEngine engine(store, scfg);
  OnlineUpdateConfig ocfg;
  ocfg.publish_every = 1;
  ocfg.rebuild_threads = 1;
  engine.enable_online_updates(master, ocfg);

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> served{0};
  std::thread client([&] {
    std::size_t i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      auto future =
          engine.submit(data.test[i % data.test.size()].features,
                        {.top_k = 5});
      if (future.has_value()) {
        try {
          future->get();
          served.fetch_add(1, std::memory_order_relaxed);
        } catch (const Error&) {
        }
      }
      ++i;
    }
  });

  // 1% of the label space churns per update: grow one, retire one.
  for (int round = 0; round < 6; ++round) {
    OnlineDelta delta;
    delta.add_units = 1;
    delta.retire = {static_cast<Index>(round)};
    const auto tr = data.train.samples();
    const std::size_t offset = static_cast<std::size_t>(round) * 8;
    delta.samples.assign(tr.begin() + offset, tr.begin() + offset + 8);
    engine.update(delta);
  }

  std::this_thread::sleep_for(50ms);
  stop.store(true);
  client.join();
  engine.stop();

  EXPECT_GT(served.load(), 0u);
  const ServeStats stats = engine.stats();
  EXPECT_EQ(stats.online_update_calls, 6u);
  EXPECT_EQ(stats.online_publishes, 6u);
  EXPECT_EQ(stats.labels_added, 6u);
  EXPECT_EQ(stats.labels_retired, 6u);
  EXPECT_EQ(store->current()->network->output_dim(),
            data.train.label_dim() + 6);
  EXPECT_EQ(stats.snapshot_retired_labels, 6);
}

}  // namespace
}  // namespace slide
