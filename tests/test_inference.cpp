// Inference-path tests: top-k prediction semantics, context reuse,
// sampled-vs-exact agreement properties, and serving-path behaviour on
// multi-label outputs.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/trainer.h"
#include "data/synthetic.h"
#include "metrics/metrics.h"

namespace slide {
namespace {

SyntheticDataset planted() {
  SyntheticConfig cfg;
  cfg.feature_dim = 400;
  cfg.label_dim = 80;
  cfg.num_train = 600;
  cfg.num_test = 150;
  cfg.features_per_label = 10;
  cfg.active_per_label = 6;
  cfg.noise_features = 2;
  cfg.seed = 301;
  return make_synthetic_xc(cfg);
}

Network trained_network(const SyntheticDataset& data) {
  HashFamilyConfig family;
  family.kind = HashFamilyKind::kSimhash;
  family.k = 5;
  family.l = 16;
  NetworkConfig cfg = make_paper_network(data.train.feature_dim(),
                                         data.train.label_dim(), family, 24,
                                         16);
  cfg.max_batch_size = 32;
  cfg.layers[0].table.range_pow = 9;
  Network net(cfg, 2);
  TrainerConfig tc;
  tc.batch_size = 32;
  tc.num_threads = 2;
  tc.learning_rate = 5e-3f;
  Trainer trainer(net, tc);
  trainer.train(data.train, 150);
  net.rebuild_all(&trainer.pool());
  return net;
}

TEST(PredictTopK, FirstElementIsTop1AndResultsAreUniqueSorted) {
  const auto data = planted();
  Network net = trained_network(data);
  InferenceContext ctx(net.max_sampled_units());
  for (std::size_t i = 0; i < 30; ++i) {
    const auto& x = data.test[i].features;
    const Index top1 = net.predict_top1(x, ctx, /*exact=*/true);
    const auto top5 = net.predict_topk(x, ctx, 5, /*exact=*/true);
    ASSERT_EQ(top5.size(), 5u);
    EXPECT_EQ(top5[0], top1) << i;
    std::set<Index> unique(top5.begin(), top5.end());
    EXPECT_EQ(unique.size(), 5u);
    for (Index label : top5) EXPECT_LT(label, net.output_dim());
  }
}

TEST(PredictTopK, KLargerThanActiveSetIsClamped) {
  const auto data = planted();
  Network net = trained_network(data);
  InferenceContext ctx(net.max_sampled_units());
  // Exact mode: k > output_dim clamps to output_dim.
  const auto all = net.predict_topk(data.test[0].features, ctx,
                                    static_cast<int>(net.output_dim()) + 50,
                                    true);
  EXPECT_EQ(all.size(), net.output_dim());
  // All labels present exactly once.
  std::set<Index> unique(all.begin(), all.end());
  EXPECT_EQ(unique.size(), net.output_dim());
}

TEST(PredictTopK, ExactScoresAreDescending) {
  const auto data = planted();
  Network net = trained_network(data);
  InferenceContext ctx(net.max_sampled_units());
  const auto& x = data.test[1].features;
  const auto top = net.predict_topk(x, ctx, 10, true);
  // Reconstruct scores via single-output scoring through exact top-1 of a
  // shrinking candidate set is awkward; instead verify the ranking property
  // through P@k monotonicity: top-1 hit implies top-5 contains it.
  const Index top1 = net.predict_top1(x, ctx, true);
  EXPECT_NE(std::find(top.begin(), top.end(), top1), top.end());
  EXPECT_EQ(top[0], top1);
}

TEST(PredictTopK, RejectsNonPositiveK) {
  const auto data = planted();
  Network net = trained_network(data);
  InferenceContext ctx(net.max_sampled_units());
  EXPECT_THROW(net.predict_topk(data.test[0].features, ctx, 0, true), Error);
}

TEST(Inference, ContextIsReusableAcrossManyPredictions) {
  const auto data = planted();
  Network net = trained_network(data);
  InferenceContext ctx(net.max_sampled_units());
  // Interleave exact/sampled/topk calls through one context; results of
  // exact calls must be stable regardless of interleaving.
  std::vector<Index> first;
  for (std::size_t i = 0; i < 10; ++i)
    first.push_back(net.predict_top1(data.test[i].features, ctx, true));
  for (std::size_t i = 0; i < 10; ++i) {
    net.predict_top1(data.test[i].features, ctx, false);
    net.predict_topk(data.test[i].features, ctx, 3, false);
    EXPECT_EQ(net.predict_top1(data.test[i].features, ctx, true), first[i]);
  }
}

TEST(Inference, SampledTopKOverlapsExactTopKOnTrainedModel) {
  const auto data = planted();
  Network net = trained_network(data);
  InferenceContext ctx(net.max_sampled_units());
  int overlap = 0, total = 0;
  for (std::size_t i = 0; i < 40; ++i) {
    const auto exact = net.predict_topk(data.test[i].features, ctx, 3, true);
    const auto sampled =
        net.predict_topk(data.test[i].features, ctx, 3, false);
    for (Index p : sampled) {
      ++total;
      overlap +=
          std::find(exact.begin(), exact.end(), p) != exact.end() ? 1 : 0;
    }
  }
  // The hash tables route most top predictions into the sampled set.
  EXPECT_GT(overlap, total / 3);
}

TEST(Inference, UntrainedPredictionsAreValidLabels) {
  const auto data = planted();
  HashFamilyConfig family;
  family.kind = HashFamilyKind::kDwta;
  family.k = 4;
  family.l = 8;
  NetworkConfig cfg = make_paper_network(data.train.feature_dim(),
                                         data.train.label_dim(), family, 16,
                                         8);
  cfg.max_batch_size = 4;
  cfg.layers[0].table.range_pow = 8;
  Network net(cfg, 1);
  InferenceContext ctx(net.max_sampled_units());
  for (std::size_t i = 0; i < 20; ++i) {
    EXPECT_LT(net.predict_top1(data.test[i].features, ctx, false),
              net.output_dim());
  }
}

}  // namespace
}  // namespace slide
