// ShardedSampledLayer tests: partition topology, the S=1 bit-identity
// anchor against the monolithic SampledLayer, shard-merged top-k vs the
// single-table path on exhaustive nets, gradient routing, checkpoint-v3
// round-trips and resharding (including legacy v2 monolithic files),
// train-while-rebuild stress at S=4 (the TSan CI target), and sharded
// snapshot hot-swap under serving load.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstring>
#include <cmath>
#include <numeric>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include "core/builder.h"
#include "core/serialize.h"
#include "core/sharded_layer.h"
#include "core/trainer.h"
#include "data/synthetic.h"
#include "metrics/metrics.h"
#include "serve/engine.h"

namespace slide {
namespace {

using namespace std::chrono_literals;

SyntheticDataset planted(Index features = 300, Index labels = 61,
                         std::uint64_t seed = 911) {
  SyntheticConfig cfg;
  cfg.feature_dim = features;
  cfg.label_dim = labels;
  cfg.num_train = 400;
  cfg.num_test = 100;
  cfg.features_per_label = 10;
  cfg.active_per_label = 6;
  cfg.noise_features = 2;
  cfg.seed = seed;
  return make_synthetic_xc(cfg);
}

HashFamilyConfig small_family() {
  HashFamilyConfig family;
  family.kind = HashFamilyKind::kSimhash;
  family.k = 5;
  family.l = 12;
  return family;
}

/// Builder-backed config; shards = 0 keeps the monolithic layer.
NetworkConfig net_config(const SyntheticDataset& data, int shards,
                         Index target = 20,
                         MaintenancePolicy policy = MaintenancePolicy::kSync,
                         Precision precision = Precision::kFP32) {
  NetworkBuilder b(data.train.feature_dim());
  b.dense(16).sampled(data.train.label_dim(), small_family(), target);
  b.table({.range_pow = 9, .bucket_size = 64}).maintenance(policy);
  if (shards > 0) b.shards(shards);
  b.max_batch(32).precision(precision).seed(123);
  return b.to_config();
}

/// The sharded output layer of a network built with net_config(shards>=1).
const ShardedSampledLayer& sharded_output(const Network& net) {
  const auto* layer = dynamic_cast<const ShardedSampledLayer*>(
      &net.stack(net.stack_depth() - 1));
  EXPECT_NE(layer, nullptr);
  return *layer;
}

/// Reads global weight row `u` of any stack layer through its shard spans.
std::span<const float> global_row(const Layer& layer, Index u) {
  for (int s = layer.num_shards() - 1; s >= 0; --s) {
    const Index off = layer.shard_row_offset(s);
    const std::span<const float> w = layer.shard_weights(s);
    const Index rows = static_cast<Index>(w.size() / layer.fan_in());
    if (u >= off && u < off + rows) {
      return w.subspan(static_cast<std::size_t>(u - off) * layer.fan_in(),
                       layer.fan_in());
    }
  }
  ADD_FAILURE() << "row " << u << " not covered by any shard";
  return {};
}

float global_bias(const Layer& layer, Index u) {
  for (int s = layer.num_shards() - 1; s >= 0; --s) {
    const Index off = layer.shard_row_offset(s);
    const std::span<const float> b = layer.shard_bias(s);
    if (u >= off && u < off + static_cast<Index>(b.size()))
      return b[u - off];
  }
  ADD_FAILURE() << "bias " << u << " not covered by any shard";
  return 0.0f;
}

bool bytes_equal(std::span<const float> a, std::span<const float> b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0;
}

/// Asserts every logical weight row and bias of two same-shape layers is
/// bit-identical, regardless of either layer's shard partition.
void expect_same_parameters(const Layer& a, const Layer& b) {
  ASSERT_EQ(a.units(), b.units());
  ASSERT_EQ(a.fan_in(), b.fan_in());
  for (Index u = 0; u < a.units(); ++u) {
    ASSERT_TRUE(bytes_equal(global_row(a, u), global_row(b, u)))
        << "weight row " << u;
    const float ba = global_bias(a, u), bb = global_bias(b, u);
    ASSERT_EQ(std::memcmp(&ba, &bb, sizeof(float)), 0) << "bias " << u;
  }
}

void train(Network& net, const SyntheticDataset& data, long iterations,
           int threads) {
  TrainerConfig tc;
  tc.batch_size = 32;
  tc.num_threads = threads;
  tc.learning_rate = 5e-3f;
  Trainer trainer(net, tc);
  trainer.train(data.train, iterations);
}

/// Clones weights from `src` into `dst` through an in-memory checkpoint
/// (exercising the v3 scatter loader when partitions differ).
void clone_weights(const Network& src, Network& dst) {
  std::stringstream buffer(std::ios::in | std::ios::out | std::ios::binary);
  save_weights(src, buffer);
  buffer.seekg(0);
  load_weights(dst, buffer);
}

// ---- Partition topology ----------------------------------------------------

TEST(ShardedLayer, PartitionCoversRangeWithNearEqualShards) {
  SampledLayer::Config cfg;
  cfg.units = 13;
  cfg.fan_in = 8;
  cfg.hashed = true;
  cfg.family = small_family();
  cfg.sampling.target = 6;
  ShardedSampledLayer layer(cfg, 4, /*batch_slots=*/2, /*max_threads=*/1);

  ASSERT_EQ(layer.shards(), 4);
  // 13 = 4 + 3 + 3 + 3; offsets 0, 4, 7, 10, 13.
  EXPECT_EQ(layer.shard_offset(0), 0u);
  EXPECT_EQ(layer.shard_offset(1), 4u);
  EXPECT_EQ(layer.shard_offset(2), 7u);
  EXPECT_EQ(layer.shard_offset(3), 10u);
  EXPECT_EQ(layer.shard_offset(4), 13u);
  std::size_t params = 0;
  for (int s = 0; s < 4; ++s) {
    EXPECT_EQ(layer.shard(s).fan_in(), 8u);
    params += layer.shard(s).num_parameters();
  }
  EXPECT_EQ(params, layer.num_parameters());
  EXPECT_EQ(layer.num_parameters(), 13u * 8u + 13u);
  for (Index u = 0; u < 13; ++u) {
    const int s = layer.shard_of(u);
    EXPECT_GE(u, layer.shard_offset(s));
    EXPECT_LT(u, layer.shard_offset(s + 1));
  }
  EXPECT_EQ(layer.kind(), LayerKind::kSharded);
  EXPECT_STREQ(to_string(layer.kind()), "sharded");
  // The whole-layer spans are deliberately empty: the per-shard spans are
  // the serialization surface.
  EXPECT_TRUE(layer.weights_span().empty());
  EXPECT_TRUE(layer.bias_span().empty());
}

TEST(ShardedLayer, BuilderAndFactoryWiring) {
  const auto data = planted();
  Network net(net_config(data, 4), 2);
  const Layer& out = net.stack(0);
  EXPECT_EQ(out.kind(), LayerKind::kSharded);
  EXPECT_EQ(out.num_shards(), 4);
  EXPECT_EQ(out.units(), data.train.label_dim());

  // Config round-trips the shard count.
  EXPECT_EQ(net_config(data, 4).layers[0].shards, 4);
  EXPECT_EQ(net_config(data, 0).layers[0].shards, 0);

  // Sharding a non-hashed layer is rejected.
  NetworkBuilder dense_net(10);
  dense_net.dense(8).dense(5, Activation::kSoftmax);
  EXPECT_THROW(dense_net.shards(2), Error);
  // More shards than units is rejected.
  NetworkBuilder narrow(10);
  narrow.dense(8).sampled(4, small_family(), 2);
  EXPECT_THROW(narrow.shards(8), Error);

  // Monolithic layers report themselves as their own single shard.
  Network mono(net_config(data, 0), 2);
  EXPECT_EQ(mono.stack(0).num_shards(), 1);
  EXPECT_EQ(mono.stack(0).shard_row_offset(0), 0u);
  EXPECT_TRUE(bytes_equal(mono.stack(0).shard_weights(0),
                          mono.stack(0).weights_span()));
}

// ---- S=1 bit-identity (the parity anchor) ---------------------------------

TEST(ShardedLayer, S1BitIdenticalToMonolithicUnderSyncTraining) {
  const auto data = planted();
  // Single-threaded sync training is fully deterministic, so any
  // divergence between the monolithic layer and a 1-shard sharded layer —
  // init stream, RNG consumption, sampling, Adam trajectory, rebuild
  // schedule — shows up as a byte difference.
  Network mono(net_config(data, 0), 1);
  Network shard1(net_config(data, 1), 1);
  train(mono, data, 60, 1);
  train(shard1, data, 60, 1);

  ASSERT_TRUE(bytes_equal(mono.embedding().weights_span(),
                          shard1.embedding().weights_span()));
  ASSERT_TRUE(bytes_equal(mono.embedding().bias_span(),
                          shard1.embedding().bias_span()));
  expect_same_parameters(mono.stack(0), shard1.stack(0));

  // Inference parity, exact and sampled (same-seed contexts).
  InferenceContext ctx_a(mono, 7), ctx_b(shard1, 7);
  for (std::size_t i = 0; i < 50; ++i) {
    const SparseVector& x = data.test[i].features;
    EXPECT_EQ(mono.predict_top1(x, ctx_a, true),
              shard1.predict_top1(x, ctx_b, true));
    EXPECT_EQ(mono.predict_topk(x, ctx_a, 5, true),
              shard1.predict_topk(x, ctx_b, 5, true));
    EXPECT_EQ(mono.predict_topk(x, ctx_a, 5, false),
              shard1.predict_topk(x, ctx_b, 5, false));
  }
}

// ---- Shard-merged top-k ----------------------------------------------------

TEST(ShardedLayer, ShardMergedTopKEqualsSingleTableTopKWhenExhaustive) {
  const auto data = planted(300, 61);
  Network mono(net_config(data, 0, /*target=*/61), 2);
  train(mono, data, 40, 2);
  mono.rebuild_all(nullptr);

  for (int shards : {2, 3, 5}) {
    Network sharded(net_config(data, shards, /*target=*/61), 2);
    clone_weights(mono, sharded);
    expect_same_parameters(mono.stack(0), sharded.stack(0));

    InferenceContext ctx_a(mono, 7), ctx_b(sharded, 7);
    for (std::size_t i = 0; i < data.test.size(); ++i) {
      const SparseVector& x = data.test[i].features;
      // Exact mode scores every unit on both sides: the merged heap and
      // the single-table partial sort must produce the same ranking,
      // including tie-breaks (lower unit id first).
      EXPECT_EQ(mono.predict_topk(x, ctx_a, 7, true),
                sharded.predict_topk(x, ctx_b, 7, true))
          << "shards=" << shards << " sample=" << i;
      EXPECT_EQ(mono.predict_top1(x, ctx_a, true),
                sharded.predict_top1(x, ctx_b, true));
    }
  }
}

TEST(ShardedLayer, HeapMergeMatchesRankingTheMergedCandidates) {
  // Internal consistency of the k-way merge on the *sampled* path: the
  // top-k the bounded heap produces must equal ranking the full merged
  // candidate list, for identical RNG streams.
  const auto data = planted();
  Network net(net_config(data, 4, /*target=*/24), 2);
  train(net, data, 30, 2);
  net.rebuild_all(nullptr);
  const ShardedSampledLayer& out = sharded_output(net);

  InferenceContext ctx(net, 5);
  VisitedSet visited_a(net.max_sampled_units());
  VisitedSet visited_b(net.max_sampled_units());
  TopKScratch scratch;
  std::vector<Index> ids, merged_topk;
  std::vector<float> act;
  for (std::size_t i = 0; i < 40; ++i) {
    ctx.dense.resize(net.embedding().units());
    net.embedding().forward_inference(data.test[i].features,
                                      ctx.dense.data());
    Rng rng_a(1000 + i), rng_b(1000 + i);
    out.forward_inference({}, ctx.dense, false, rng_a, visited_a, ids, act);
    out.forward_inference_topk({}, ctx.dense, 6, false, rng_b, visited_b,
                               scratch, merged_topk);

    std::vector<std::size_t> order(act.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    const std::size_t take = std::min<std::size_t>(6, order.size());
    std::partial_sort(order.begin(), order.begin() + take, order.end(),
                      [&](std::size_t a, std::size_t b) {
                        return act[a] > act[b] || (act[a] == act[b] && a < b);
                      });
    ASSERT_EQ(merged_topk.size(), take);
    for (std::size_t j = 0; j < take; ++j)
      EXPECT_EQ(merged_topk[j], ids[order[j]]) << "sample " << i << " pos "
                                               << j;
  }
}

// ---- Gradient routing ------------------------------------------------------

TEST(ShardedLayer, GradientsMatchMonolithicWhenExhaustive) {
  const auto data = planted(300, 40);
  // Exhaustive target: both nets activate every output unit, so one
  // single-threaded training sample must accumulate identical gradients.
  Network mono(net_config(data, 0, /*target=*/40), 1);
  Network sharded(net_config(data, 3, /*target=*/40), 1);
  clone_weights(mono, sharded);

  Rng rng_a(9), rng_b(9);
  VisitedSet va(mono.max_sampled_units()), vb(sharded.max_sampled_units());
  const Sample& sample = data.train[0];
  const float loss_a = mono.train_sample(0, sample, 1.0f, rng_a, va, 0);
  const float loss_b = sharded.train_sample(0, sample, 1.0f, rng_b, vb, 0);
  EXPECT_EQ(loss_a, loss_b);

  const auto& mono_out = mono.output_layer();
  const ShardedSampledLayer& sharded_out = sharded_output(sharded);
  for (Index u = 0; u < 40; ++u) {
    const int s = sharded_out.shard_of(u);
    const Index local = u - sharded_out.shard_offset(s);
    const float* ga = mono_out.gradient_row(u);
    const float* gb = sharded_out.shard(s).gradient_row(local);
    ASSERT_EQ(std::memcmp(ga, gb, mono.config().hidden_units * sizeof(float)),
              0)
        << "gradient row " << u;
    EXPECT_EQ(mono_out.bias_gradient(u),
              sharded_out.shard(s).bias_gradient(local));
  }
  // Backpropagated error reaching the embedding matches to rounding: the
  // shard-segmented active order changes the prev.err accumulation order
  // (float addition is non-associative), so compare with a tight tolerance
  // rather than byte equality.
  const float* ea =
      mono.embedding().gradient_column(sample.features.indices()[0]);
  const float* eb =
      sharded.embedding().gradient_column(sample.features.indices()[0]);
  for (Index h = 0; h < mono.config().hidden_units; ++h) {
    EXPECT_NEAR(ea[h], eb[h], 1e-5f * (1.0f + std::fabs(ea[h])))
        << "embedding gradient " << h;
  }
}

TEST(ShardedLayer, BackwardRoutesGradientsOnlyToActiveShards) {
  const auto data = planted(300, 60);
  // No random fill: the active set is exactly forced labels + LSH hits, so
  // inactive units — and whole shards without candidates — must see zero
  // gradient traffic.
  NetworkBuilder b(data.train.feature_dim());
  b.dense(16)
      .sampled(60, small_family(), 8)
      .table({.range_pow = 9, .bucket_size = 64})
      .fill_random_to_target(false)
      .shards(4)
      .max_batch(8)
      .seed(123);
  Network net(b.to_config(), 1);
  const ShardedSampledLayer& out = sharded_output(net);

  Rng rng(3);
  VisitedSet visited(net.max_sampled_units());
  net.train_sample(0, data.train[1], 1.0f, rng, visited, 0);

  const ActiveSet& merged = net.stack(0).slot(0);
  ASSERT_FALSE(merged.ids.empty());
  std::set<Index> active(merged.ids.begin(), merged.ids.end());
  for (Index label : data.train[1].labels) EXPECT_TRUE(active.count(label));
  for (Index u = 0; u < 60; ++u) {
    const int s = out.shard_of(u);
    const Index local = u - out.shard_offset(s);
    const float* g = out.shard(s).gradient_row(local);
    const bool any = std::any_of(g, g + 16, [](float v) { return v != 0.0f; });
    if (active.count(u)) continue;  // active rows may or may not move
    EXPECT_FALSE(any) << "inactive unit " << u << " received gradient";
    EXPECT_EQ(out.shard(s).bias_gradient(local), 0.0f);
  }
  // The labeled unit itself must have moved (softmax pulls it up).
  const Index label = data.train[1].labels[0];
  const int ls = out.shard_of(label);
  EXPECT_NE(out.shard(ls).bias_gradient(label - out.shard_offset(ls)), 0.0f);
}

// ---- Checkpoint v3 + resharding -------------------------------------------

TEST(ShardedLayer, CheckpointV3RoundTripAcrossShardCounts) {
  const auto data = planted();
  Network src(net_config(data, 3), 2);
  train(src, data, 40, 2);
  std::stringstream buffer(std::ios::in | std::ios::out | std::ios::binary);
  save_weights(src, buffer);

  const CheckpointInfo info = peek_checkpoint_info(buffer);
  EXPECT_EQ(info.version, 5u);
  EXPECT_EQ(info.kind, 0u);

  InferenceContext ctx_src(src, 7);
  for (int shards : {0, 1, 3, 5}) {  // 0 = monolithic target
    buffer.seekg(0);
    Network dst(net_config(data, shards), 2);
    load_weights(dst, buffer);
    expect_same_parameters(src.stack(0), dst.stack(0));
    ASSERT_TRUE(bytes_equal(src.embedding().weights_span(),
                            dst.embedding().weights_span()));
    InferenceContext ctx_dst(dst, 7);
    for (std::size_t i = 0; i < 25; ++i) {
      EXPECT_EQ(src.predict_topk(data.test[i].features, ctx_src, 5, true),
                dst.predict_topk(data.test[i].features, ctx_dst, 5, true))
          << "shards=" << shards;
    }
  }
}

TEST(ShardedLayer, LegacyV2MonolithicCheckpointReshardsIntoShardedStack) {
  const auto data = planted();
  Network mono(net_config(data, 0), 2);
  train(mono, data, 30, 2);

  // Hand-write the pre-shard (version 2) byte layout: header + precision
  // tag, then one monolithic weights+bias block pair per layer, no shard
  // words. This is exactly what a v2-era binary produced.
  std::stringstream buffer(std::ios::in | std::ios::out | std::ios::binary);
  auto put_u32 = [&](std::uint32_t v) {
    buffer.write(reinterpret_cast<const char*>(&v), sizeof(v));
  };
  auto put_block = [&](std::span<const float> block) {
    put_u32(static_cast<std::uint32_t>(block.size()));
    buffer.write(reinterpret_cast<const char*>(block.data()),
                 static_cast<std::streamsize>(block.size() * sizeof(float)));
  };
  put_u32(0x534C4944);  // magic
  put_u32(2);           // version
  put_u32(0);           // kind
  put_u32(mono.embedding().input_dim());
  put_u32(mono.embedding().units());
  put_u32(1);  // num_layers
  put_u32(0);  // precision tag: fp32
  put_block(mono.embedding().weights_span());
  put_block(mono.embedding().bias_span());
  put_u32(mono.stack(0).units());
  put_u32(mono.stack(0).fan_in());
  put_block(mono.stack(0).weights_span());
  put_block(mono.stack(0).bias_span());

  buffer.seekg(0);
  EXPECT_EQ(peek_checkpoint_info(buffer).version, 2u);
  Network sharded(net_config(data, 4), 2);
  load_weights(sharded, buffer);
  expect_same_parameters(mono.stack(0), sharded.stack(0));

  InferenceContext ctx_a(mono, 7), ctx_b(sharded, 7);
  for (std::size_t i = 0; i < 25; ++i) {
    EXPECT_EQ(mono.predict_topk(data.test[i].features, ctx_a, 5, true),
              sharded.predict_topk(data.test[i].features, ctx_b, 5, true));
  }
}

TEST(ShardedLayer, TruncatedShardBlocksAreRejected) {
  const auto data = planted();
  Network src(net_config(data, 3), 1);
  std::stringstream buffer(std::ios::in | std::ios::out | std::ios::binary);
  save_weights(src, buffer);
  const std::string bytes = buffer.str();

  // Chop the stream inside the last shard's weight block.
  std::stringstream truncated(bytes.substr(0, bytes.size() - 64));
  Network dst(net_config(data, 3), 1);
  EXPECT_THROW(load_weights(dst, truncated), Error);
}

// ---- bf16 mirrors per shard ------------------------------------------------

TEST(ShardedLayer, Bf16MirrorsQuantizePerShard) {
  const auto data = planted();
  Network fp32(net_config(data, 4), 2);
  Network bf16(net_config(data, 4, 20, MaintenancePolicy::kSync,
                          Precision::kBF16),
               2);
  clone_weights(fp32, bf16);

  const MemoryFootprint f32 = fp32.memory_footprint();
  const MemoryFootprint f16 = bf16.memory_footprint();
  EXPECT_EQ(f32.mirror_bytes, 0u);
  EXPECT_GT(f16.mirror_bytes, 0u);
  EXPECT_LT(f16.inference_weight_bytes, f32.inference_weight_bytes);

  // Quantized exact predictions agree with fp32 on the vast majority of
  // samples (same contract the monolithic bf16 path is held to).
  InferenceContext ctx_a(fp32, 7), ctx_b(bf16, 7);
  int agree = 0;
  const int n = 100;
  for (int i = 0; i < n; ++i) {
    const SparseVector& x = data.test[static_cast<std::size_t>(i)].features;
    agree += fp32.predict_top1(x, ctx_a, true) ==
             bf16.predict_top1(x, ctx_b, true);
  }
  EXPECT_GE(agree, 95) << "bf16 sharded top-1 agreement too low";
}

// ---- Maintenance: per-shard async rebuilds --------------------------------

NetworkConfig stress_config(const SyntheticDataset& data, int shards,
                            MaintenancePolicy policy) {
  NetworkConfig cfg = net_config(data, shards, 20, policy);
  cfg.layers[0].rebuild.initial_period = 1;  // fire every iteration
  cfg.layers[0].rebuild.decay = 0.0;
  return cfg;
}

class ShardedMaintenanceStress
    : public ::testing::TestWithParam<MaintenancePolicy> {};

TEST_P(ShardedMaintenanceStress, TrainWhileRebuildAtS4IsSafe) {
  const auto data = planted(300, 512);
  Network net(stress_config(data, 4, GetParam()), 4);
  TrainerConfig tc;
  tc.batch_size = 16;
  tc.num_threads = 4;
  tc.learning_rate = 2e-3f;
  Trainer trainer(net, tc);
  // Four HOGWILD trainer threads sample from four live table groups while
  // four per-shard maintenance threads publish rebuilt shadows / delta
  // re-inserts underneath them, every iteration, for dozens of swaps.
  trainer.train(data.train, 60);
  net.quiesce_maintenance();

  const ShardedSampledLayer& out = sharded_output(net);
  std::uint64_t publishes = 0;
  for (int s = 0; s < out.shards(); ++s)
    publishes += out.shard(s).tables()->publish_count();
  EXPECT_GT(publishes + static_cast<std::uint64_t>(out.rebuild_count()) +
                static_cast<std::uint64_t>(out.delta_reinserted()),
            0u);

  // flush_maintenance drains every shard's dirty queue.
  net.flush_maintenance();
  EXPECT_EQ(out.dirty_pending(), 0u);

  // Still coherent end to end.
  net.rebuild_all(&trainer.pool());
  const double acc =
      evaluate_p_at_1(net, data.test, trainer.pool(), {.exact = true});
  EXPECT_GE(acc, 0.0);
  EXPECT_LE(acc, 1.0);
}

INSTANTIATE_TEST_SUITE_P(Policies, ShardedMaintenanceStress,
                         ::testing::Values(MaintenancePolicy::kAsyncFull,
                                           MaintenancePolicy::kAsyncDelta),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

TEST(ShardedLayer, AsyncDeltaReinsertsProceedPerShard) {
  const auto data = planted(300, 512);
  NetworkConfig cfg = stress_config(data, 4, MaintenancePolicy::kAsyncDelta);
  Network net(cfg, 2);
  TrainerConfig tc;
  tc.batch_size = 8;
  tc.num_threads = 2;
  tc.learning_rate = 1e-3f;
  Trainer trainer(net, tc);
  trainer.train(data.train, 8);
  net.flush_maintenance();
  const ShardedSampledLayer& out = sharded_output(net);
  EXPECT_GT(out.delta_reinserted(), 0);
  EXPECT_EQ(out.dirty_pending(), 0u);
}

// ---- Serving: sharded snapshot hot-swap under load ------------------------

TEST(ShardedLayer, HotSwapShardedSnapshotUnderLoadZeroFailures) {
  const auto data = planted();
  auto network = std::make_shared<Network>(net_config(data, 0), 2);
  {
    TrainerConfig tc;
    tc.batch_size = 32;
    tc.num_threads = 2;
    tc.learning_rate = 5e-3f;
    Trainer trainer(*network, tc);
    trainer.train(data.train, 60);
    network->rebuild_all(&trainer.pool());
  }
  auto store = std::make_shared<ModelStore>(network);
  const Index output_dim = network->output_dim();
  ServeConfig cfg;
  cfg.num_workers = 2;
  cfg.max_batch = 4;
  cfg.max_wait_us = 200;
  cfg.queue_capacity = 1 << 16;
  InferenceEngine engine(store, cfg);

  std::atomic<bool> running{true};
  std::atomic<std::uint64_t> ok{0}, failed{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 2; ++c) {
    clients.emplace_back([&, c] {
      std::size_t i = static_cast<std::size_t>(c);
      while (running.load()) {
        auto f = engine.submit(data.test[i % data.test.size()].features, {.top_k = 3});
        ++i;
        if (!f.has_value()) continue;  // backpressure: retry
        Prediction p = f->get();
        const bool valid =
            !p.labels.empty() &&
            std::all_of(p.labels.begin(), p.labels.end(),
                        [&](Index l) { return l < output_dim; });
        (valid ? ok : failed).fetch_add(1);
      }
    });
  }
  // Republish the monolithic trainer model as progressively wider sharded
  // snapshots while traffic flows — the v2-era model reshards on publish.
  for (int shards : {2, 4}) {
    std::this_thread::sleep_for(50ms);
    publish_clone_sharded(*store, *network, shards, /*rebuild_threads=*/2);
  }
  std::this_thread::sleep_for(50ms);
  running.store(false);
  for (auto& t : clients) t.join();
  engine.stop();

  EXPECT_EQ(failed.load(), 0u);
  EXPECT_GT(ok.load(), 0u);
  EXPECT_EQ(store->version(), 3u);
  // The live snapshot really is sharded.
  const auto snap = store->current();
  EXPECT_EQ(snap->network->stack(0).kind(), LayerKind::kSharded);
  EXPECT_EQ(snap->network->stack(0).num_shards(), 4);

  // Resharded snapshots serve the trainer's exact predictions.
  InferenceContext ctx_a(*network, 7), ctx_b(*snap->network, 7);
  for (std::size_t i = 0; i < 25; ++i) {
    EXPECT_EQ(network->predict_topk(data.test[i].features, ctx_a, 3, true),
              snap->network->predict_topk(data.test[i].features, ctx_b, 3,
                                          true));
  }
}

}  // namespace
}  // namespace slide
