// Tests for the platform substrate: aligned allocation, RNG, timers,
// thread pool (scheduling, exceptions, busy accounting), hugepages and
// perf counters.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <set>
#include <thread>

#include "sys/aligned.h"
#include "sys/hugepages.h"
#include "sys/perf_counters.h"
#include "sys/rng.h"
#include "sys/thread_pool.h"
#include "sys/timer.h"

namespace slide {
namespace {

// ---------------------------------------------------------------------------
// AlignedAllocator
// ---------------------------------------------------------------------------

TEST(Aligned, VectorStorageIsCacheLineAligned) {
  AlignedVector<float> v(100, 1.0f);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(v.data()) % kCacheLineSize, 0u);
}

TEST(Aligned, GrowPreservesContentAndAlignment) {
  AlignedVector<int> v;
  for (int i = 0; i < 1000; ++i) v.push_back(i);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(v.data()) % kCacheLineSize, 0u);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(v[static_cast<std::size_t>(i)], i);
}

// ---------------------------------------------------------------------------
// Rng
// ---------------------------------------------------------------------------

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += a() == b() ? 1 : 0;
  EXPECT_LT(equal, 3);
}

TEST(Rng, UniformRespectsBound) {
  Rng rng(7);
  for (std::uint32_t n : {1u, 2u, 7u, 1000u}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.uniform(n), n);
  }
}

TEST(Rng, UniformCoversRange) {
  Rng rng(11);
  std::set<std::uint32_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, UniformFloatInUnitInterval) {
  Rng rng(3);
  double sum = 0.0;
  for (int i = 0; i < 10'000; ++i) {
    const float u = rng.uniform_float();
    ASSERT_GE(u, 0.0f);
    ASSERT_LT(u, 1.0f);
    sum += u;
  }
  EXPECT_NEAR(sum / 10'000.0, 0.5, 0.02);
}

TEST(Rng, NormalHasUnitVarianceRoughly) {
  Rng rng(5);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 20'000;
  for (int i = 0; i < n; ++i) {
    const float x = rng.normal();
    sum += x;
    sum_sq += static_cast<double>(x) * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.05);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(9);
  Rng b = a.fork();
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += a() == b() ? 1 : 0;
  EXPECT_LT(equal, 3);
}

// ---------------------------------------------------------------------------
// WallTimer
// ---------------------------------------------------------------------------

TEST(WallTimer, MeasuresElapsedTime) {
  WallTimer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_GE(t.milliseconds(), 15.0);
  t.reset();
  EXPECT_LT(t.milliseconds(), 15.0);
}

// ---------------------------------------------------------------------------
// ThreadPool
// ---------------------------------------------------------------------------

class ThreadPoolParam : public ::testing::TestWithParam<int> {};

TEST_P(ThreadPoolParam, ParallelForVisitsEveryIndexExactlyOnce) {
  ThreadPool pool(GetParam());
  const std::size_t n = 10'000;
  std::vector<std::atomic<int>> hits(n);
  pool.parallel_for(n, [&](std::size_t i, int) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(hits[i].load(), 1) << i;
}

TEST_P(ThreadPoolParam, ParallelRangeCoversAllWithoutOverlap) {
  ThreadPool pool(GetParam());
  const std::size_t n = 999;  // not a multiple of the thread count
  std::vector<std::atomic<int>> hits(n);
  pool.parallel_range(n, [&](std::size_t b, std::size_t e, int) {
    for (std::size_t i = b; i < e; ++i)
      hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(hits[i].load(), 1);
}

TEST_P(ThreadPoolParam, RunOnAllUsesEveryThreadId) {
  ThreadPool pool(GetParam());
  std::vector<std::atomic<int>> seen(static_cast<std::size_t>(GetParam()));
  pool.run_on_all([&](int tid) {
    seen[static_cast<std::size_t>(tid)].fetch_add(1);
  });
  for (auto& s : seen) EXPECT_EQ(s.load(), 1);
}

TEST_P(ThreadPoolParam, SumsMatchSerialReference) {
  ThreadPool pool(GetParam());
  const std::size_t n = 100'000;
  std::atomic<long long> total{0};
  pool.parallel_range(n, [&](std::size_t b, std::size_t e, int) {
    long long local = 0;
    for (std::size_t i = b; i < e; ++i) local += static_cast<long long>(i);
    total.fetch_add(local);
  });
  EXPECT_EQ(total.load(),
            static_cast<long long>(n) * static_cast<long long>(n - 1) / 2);
}

INSTANTIATE_TEST_SUITE_P(Threads, ThreadPoolParam,
                         ::testing::Values(1, 2, 3, 4, 8));

TEST(ThreadPool, PropagatesExceptionsFromWorkers) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(100,
                        [&](std::size_t i, int) {
                          if (i == 57) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
  // Pool must remain usable after an exception.
  std::atomic<int> count{0};
  pool.parallel_for(10, [&](std::size_t, int) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPool, BusyAccountingGrowsWithWork) {
  ThreadPool pool(2);
  pool.reset_busy();
  pool.parallel_for(4, [&](std::size_t, int) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  });
  const auto busy = pool.busy_seconds();
  ASSERT_EQ(busy.size(), 2u);
  EXPECT_GT(busy[0] + busy[1], 0.015);
  pool.reset_busy();
  for (double b : pool.busy_seconds()) EXPECT_EQ(b, 0.0);
}

TEST(ThreadPool, ZeroItemsIsNoop) {
  ThreadPool pool(3);
  bool ran = false;
  pool.parallel_for(0, [&](std::size_t, int) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, RejectsZeroThreads) {
  EXPECT_THROW(ThreadPool(0), Error);
}

// ---------------------------------------------------------------------------
// Hugepages
// ---------------------------------------------------------------------------

TEST(Hugepages, BufferIsZeroInitializedAndWritable) {
  HugeBuffer buf(1 << 20);
  ASSERT_NE(buf.data(), nullptr);
  EXPECT_GE(buf.size(), std::size_t{1} << 20);
  auto* p = static_cast<unsigned char*>(buf.data());
  for (std::size_t i = 0; i < (1 << 20); i += 4096) EXPECT_EQ(p[i], 0);
  p[0] = 42;
  p[buf.size() - 1] = 7;
  EXPECT_EQ(p[0], 42);
}

TEST(Hugepages, SizeRoundsUpTo2MB) {
  HugeBuffer buf(1);
  EXPECT_EQ(buf.size(), std::size_t{2} << 20);
}

TEST(Hugepages, MoveTransfersOwnership) {
  HugeBuffer a(1 << 20);
  void* ptr = a.data();
  HugeBuffer b(std::move(a));
  EXPECT_EQ(b.data(), ptr);
  EXPECT_EQ(a.data(), nullptr);
}

TEST(Hugepages, ToggleControlsThpRequest) {
  const bool was = hugepages_enabled();
  set_hugepages_enabled(false);
  HugeBuffer off(1 << 20);
  EXPECT_FALSE(off.uses_thp());
  set_hugepages_enabled(true);
  HugeBuffer on(1 << 20);
  if (hugepages_supported()) {
    EXPECT_TRUE(on.uses_thp());
  }
  set_hugepages_enabled(was);
}

TEST(Hugepages, HugeArrayIndexing) {
  HugeArray a(1000);
  EXPECT_EQ(a.size(), 1000u);
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], 0.0f);
  a[999] = 3.5f;
  EXPECT_EQ(a[999], 3.5f);
}

TEST(Hugepages, HugeArrayTHoldsNonFloatElements) {
  // The quantized weight mirrors instantiate the template at 1- and 2-byte
  // element types; the element count (not the byte count) is the size.
  HugeArrayT<std::uint16_t> h(300);
  EXPECT_EQ(h.size(), 300u);
  EXPECT_FALSE(h.empty());
  for (std::size_t i = 0; i < h.size(); ++i) EXPECT_EQ(h[i], 0u);
  h[0] = 0x3C00;
  h[299] = 0xFFFF;
  EXPECT_EQ(h[0], 0x3C00u);
  EXPECT_EQ(h[299], 0xFFFFu);

  HugeArrayT<std::int8_t> b(64);
  b[63] = -127;
  EXPECT_EQ(b[63], -127);
}

TEST(Hugepages, HugeArrayTEmptyAndResize) {
  HugeArrayT<std::int8_t> h;
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.size(), 0u);
  h.resize(128);
  EXPECT_FALSE(h.empty());
  EXPECT_EQ(h.size(), 128u);
  // resize is a fresh zeroed allocation (documented non-preserving).
  h[5] = 9;
  h.resize(256);
  EXPECT_EQ(h[5], 0);
}

TEST(Hugepages, HugeArrayTFallsBackWhenThpDisabled) {
  const bool was = hugepages_enabled();
  set_hugepages_enabled(false);
  HugeArrayT<std::int8_t> h(4096);
  EXPECT_FALSE(h.uses_thp());
  // Still fully usable on ordinary pages.
  h[4095] = 1;
  EXPECT_EQ(h[4095], 1);
  set_hugepages_enabled(was);
}

// ---------------------------------------------------------------------------
// Perf counters
// ---------------------------------------------------------------------------

TEST(PerfCounters, SnapshotDeltasAreNonNegativeAndGrowWithTouching) {
  const PerfSnapshot before = PerfSnapshot::now();
  // Touch a few MB of fresh memory to generate minor faults.
  std::vector<char> block(8 << 20);
  for (std::size_t i = 0; i < block.size(); i += 4096) block[i] = 1;
  const PerfSnapshot after = PerfSnapshot::now();
  const PerfSnapshot delta = after - before;
  // Some sandboxed kernels report zero fault counts via getrusage; only
  // require growth when the platform exposes the counter at all.
  if (after.minor_page_faults > 0) {
    EXPECT_GT(delta.minor_page_faults, 0u);
  }
  EXPECT_GE(delta.user_cpu_seconds + delta.system_cpu_seconds, 0.0);
  EXPECT_GT(delta.resident_set_bytes, 0u);
}

TEST(PerfCounters, ThpModeIsKnownString) {
  const std::string mode = thp_mode();
  EXPECT_FALSE(mode.empty());
}

TEST(HardwareThreads, AtLeastOne) { EXPECT_GE(hardware_threads(), 1); }

}  // namespace
}  // namespace slide
