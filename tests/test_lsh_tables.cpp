// Hash-table and table-group tests: bucket addressing, both replacement
// policies (including the reservoir's equal-retention property), parallel
// builds, and retrieval quality of the full (K, L) structure.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include "lsh/factory.h"
#include "lsh/hash_table.h"
#include "lsh/table_group.h"
#include "sys/rng.h"

namespace slide {
namespace {

TEST(HashTable, InsertThenQueryReturnsId) {
  HashTable table({.range_pow = 8, .bucket_size = 16});
  Rng rng(1);
  table.insert(/*key=*/12345u, /*id=*/7, rng);
  const auto bucket = table.bucket(12345u);
  ASSERT_EQ(bucket.size(), 1u);
  EXPECT_EQ(bucket[0], 7u);
}

TEST(HashTable, DistinctKeysUsuallyLandInDistinctBuckets) {
  HashTable table({.range_pow = 12, .bucket_size = 4});
  Rng rng(2);
  for (Index id = 0; id < 64; ++id) table.insert(id * 2'654'435'761u, id, rng);
  EXPECT_GT(table.occupied_buckets(), 48u);  // few aliases at 4096 buckets
}

TEST(HashTable, BucketNeverExceedsCapacity) {
  HashTable table({.range_pow = 4, .bucket_size = 8,
                   .policy = InsertionPolicy::kReservoir});
  Rng rng(3);
  for (Index id = 0; id < 1'000; ++id) table.insert(42u, id, rng);
  EXPECT_EQ(table.bucket(42u).size(), 8u);
  EXPECT_EQ(table.total_stored(), 8u);
}

TEST(HashTable, FifoKeepsTheNewestEntries) {
  HashTable table({.range_pow = 4, .bucket_size = 4,
                   .policy = InsertionPolicy::kFifo});
  Rng rng(4);
  for (Index id = 0; id < 10; ++id) table.insert(7u, id, rng);
  const auto bucket = table.bucket(7u);
  std::set<Index> got(bucket.begin(), bucket.end());
  // Ring overwrite: ids 6..9 survive.
  EXPECT_EQ(got, (std::set<Index>{6, 7, 8, 9}));
}

TEST(HashTable, ReservoirRetainsItemsUniformly) {
  // Vitter's property: after inserting N items into capacity C, every item
  // survives with probability C/N. Check per-item retention across trials.
  constexpr int kTrials = 2'000;
  constexpr Index kItems = 20;
  constexpr int kCap = 5;
  std::vector<int> survived(kItems, 0);
  for (int trial = 0; trial < kTrials; ++trial) {
    HashTable table({.range_pow = 2, .bucket_size = kCap,
                     .policy = InsertionPolicy::kReservoir});
    Rng rng(static_cast<std::uint64_t>(trial) + 10);
    for (Index id = 0; id < kItems; ++id) table.insert(0u, id, rng);
    for (Index id : table.bucket(0u)) ++survived[id];
  }
  const double expected = static_cast<double>(kCap) / kItems;
  for (Index id = 0; id < kItems; ++id) {
    const double rate = static_cast<double>(survived[id]) / kTrials;
    EXPECT_NEAR(rate, expected, 0.04) << "id=" << id;
  }
}

TEST(HashTable, ClearEmptiesEverything) {
  HashTable table({.range_pow = 6, .bucket_size = 8});
  Rng rng(5);
  for (Index id = 0; id < 100; ++id) table.insert(id * 77u, id, rng);
  table.clear();
  EXPECT_EQ(table.total_stored(), 0u);
  EXPECT_EQ(table.occupied_buckets(), 0u);
}

TEST(HashTable, RejectsBadConfig) {
  EXPECT_THROW(HashTable({.range_pow = 0}), Error);
  EXPECT_THROW(HashTable({.range_pow = 29}), Error);
  EXPECT_THROW(HashTable({.range_pow = 8, .bucket_size = 0}), Error);
}

class PolicyParam : public ::testing::TestWithParam<InsertionPolicy> {};

TEST_P(PolicyParam, OverflowKeepsExactlyCapacityEntriesFromTheStream) {
  HashTable table({.range_pow = 3, .bucket_size = 16, .policy = GetParam()});
  Rng rng(6);
  for (Index id = 0; id < 500; ++id) table.insert(99u, id, rng);
  const auto bucket = table.bucket(99u);
  EXPECT_EQ(bucket.size(), 16u);
  std::set<Index> unique(bucket.begin(), bucket.end());
  EXPECT_EQ(unique.size(), 16u);  // all distinct
  for (Index id : bucket) EXPECT_LT(id, 500u);
}

INSTANTIATE_TEST_SUITE_P(Policies, PolicyParam,
                         ::testing::Values(InsertionPolicy::kReservoir,
                                           InsertionPolicy::kFifo));

// ---------------------------------------------------------------------------
// LshTableGroup
// ---------------------------------------------------------------------------

std::unique_ptr<HashFamily> simhash_family(int k, int l, Index dim,
                                           std::uint64_t seed = 31) {
  HashFamilyConfig cfg;
  cfg.kind = HashFamilyKind::kSimhash;
  cfg.k = k;
  cfg.l = l;
  cfg.dim = dim;
  cfg.seed = seed;
  return make_hash_family(cfg);
}

/// Rows: `count` unit vectors, row i = normalized random vector.
std::vector<float> random_rows(Index count, Index dim, Rng& rng) {
  std::vector<float> rows(static_cast<std::size_t>(count) * dim);
  for (Index r = 0; r < count; ++r) {
    float norm = 0.0f;
    float* row = rows.data() + static_cast<std::size_t>(r) * dim;
    for (Index d = 0; d < dim; ++d) {
      row[d] = rng.normal();
      norm += row[d] * row[d];
    }
    norm = std::sqrt(norm);
    for (Index d = 0; d < dim; ++d) row[d] /= norm;
  }
  return rows;
}

TEST(TableGroup, BuildAndQueryRetrievesSelf) {
  const Index n = 200, dim = 32;
  Rng rng(7);
  const auto rows = random_rows(n, dim, rng);
  LshTableGroup group(simhash_family(4, 16, dim),
                      {.range_pow = 10, .bucket_size = 32});
  group.build_from_rows(rows.data(), dim, n);

  // Querying with a stored vector must find its own id in some bucket.
  int self_hits = 0;
  std::vector<std::uint32_t> keys(static_cast<std::size_t>(group.l()));
  std::vector<std::span<const Index>> buckets;
  for (Index i = 0; i < 50; ++i) {
    group.query_keys_dense(rows.data() + static_cast<std::size_t>(i) * dim,
                           keys);
    group.buckets(keys, buckets);
    bool found = false;
    for (const auto& b : buckets)
      if (std::find(b.begin(), b.end(), i) != b.end()) found = true;
    self_hits += found ? 1 : 0;
  }
  EXPECT_EQ(self_hits, 50);
}

TEST(TableGroup, ParallelBuildMatchesSerialContentApproximately) {
  // K=6 gives 64 addressable fingerprints, so no bucket exceeds the
  // capacity of 64 and both builds must store every insert.
  const Index n = 500, dim = 16;
  Rng rng(8);
  const auto rows = random_rows(n, dim, rng);
  LshTableGroup serial(simhash_family(6, 8, dim),
                       {.range_pow = 9, .bucket_size = 64});
  serial.build_from_rows(rows.data(), dim, n);

  ThreadPool pool(4);
  LshTableGroup parallel(simhash_family(6, 8, dim),
                         {.range_pow = 9, .bucket_size = 64});
  parallel.build_from_rows(rows.data(), dim, n, &pool);

  // Same hash family seeds -> same buckets addressed; contents may be
  // ordered differently but totals must match when no bucket overflows.
  std::size_t serial_total = 0, parallel_total = 0;
  for (int t = 0; t < serial.l(); ++t) {
    serial_total += serial.table(t).total_stored();
    parallel_total += parallel.table(t).total_stored();
  }
  EXPECT_EQ(serial_total, parallel_total);
  EXPECT_EQ(serial_total, static_cast<std::size_t>(n) * serial.l());
}

TEST(TableGroup, NearbyVectorRetrievesNeighborMoreThanRandom) {
  const Index n = 400, dim = 64;
  Rng rng(9);
  auto rows = random_rows(n, dim, rng);
  LshTableGroup group(simhash_family(6, 30, dim),
                      {.range_pow = 11, .bucket_size = 32});
  group.build_from_rows(rows.data(), dim, n);

  std::vector<std::uint32_t> keys(static_cast<std::size_t>(group.l()));
  std::vector<std::span<const Index>> buckets;
  int neighbor_hits = 0, random_hits = 0;
  for (Index trial = 0; trial < 40; ++trial) {
    const Index target = trial * 10 % n;
    // Query = slightly perturbed copy of the target row.
    std::vector<float> q(rows.begin() + static_cast<std::ptrdiff_t>(target) * dim,
                         rows.begin() + static_cast<std::ptrdiff_t>(target + 1) * dim);
    for (auto& v : q) v += 0.05f * rng.normal();
    group.query_keys_dense(q.data(), keys);
    group.buckets(keys, buckets);
    const Index random_id = rng.uniform(n);
    for (const auto& b : buckets) {
      if (std::find(b.begin(), b.end(), target) != b.end()) {
        ++neighbor_hits;
        break;
      }
    }
    for (const auto& b : buckets) {
      if (std::find(b.begin(), b.end(), random_id) != b.end()) {
        ++random_hits;
        break;
      }
    }
  }
  EXPECT_GT(neighbor_hits, random_hits + 10);
}

TEST(TableGroup, ClearThenRebuildRestoresContent) {
  const Index n = 100, dim = 16;
  Rng rng(10);
  const auto rows = random_rows(n, dim, rng);
  LshTableGroup group(simhash_family(3, 6, dim),
                      {.range_pow = 8, .bucket_size = 32});
  group.build_from_rows(rows.data(), dim, n);
  group.clear();
  std::size_t total = 0;
  for (int t = 0; t < group.l(); ++t) total += group.table(t).total_stored();
  EXPECT_EQ(total, 0u);
  group.build_from_rows(rows.data(), dim, n);
  for (int t = 0; t < group.l(); ++t)
    EXPECT_EQ(group.table(t).total_stored(), n);
}

TEST(TableGroup, MemoryAccountingIsPlausible) {
  LshTableGroup group(simhash_family(3, 10, 16),
                      {.range_pow = 8, .bucket_size = 16});
  // 10 tables x 256 buckets x 16 slots x 4B ids + counters.
  EXPECT_GE(group.memory_bytes(), 10u * 256u * 16u * 4u);
}

}  // namespace
}  // namespace slide
