file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_time_vs_accuracy.dir/bench/fig5_time_vs_accuracy.cpp.o"
  "CMakeFiles/bench_fig5_time_vs_accuracy.dir/bench/fig5_time_vs_accuracy.cpp.o.d"
  "bench/fig5_time_vs_accuracy"
  "bench/fig5_time_vs_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_time_vs_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
