# Empty dependencies file for example_recommendation.
# This may be replaced when dependencies are built.
