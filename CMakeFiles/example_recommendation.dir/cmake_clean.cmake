file(REMOVE_RECURSE
  "CMakeFiles/example_recommendation.dir/examples/recommendation.cpp.o"
  "CMakeFiles/example_recommendation.dir/examples/recommendation.cpp.o.d"
  "examples/recommendation"
  "examples/recommendation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_recommendation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
