# Empty dependencies file for example_xc_train_cli.
# This may be replaced when dependencies are built.
