file(REMOVE_RECURSE
  "CMakeFiles/example_xc_train_cli.dir/examples/xc_train_cli.cpp.o"
  "CMakeFiles/example_xc_train_cli.dir/examples/xc_train_cli.cpp.o.d"
  "examples/xc_train_cli"
  "examples/xc_train_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_xc_train_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
