file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_kl_tradeoff.dir/bench/ablation_kl_tradeoff.cpp.o"
  "CMakeFiles/bench_ablation_kl_tradeoff.dir/bench/ablation_kl_tradeoff.cpp.o.d"
  "bench/ablation_kl_tradeoff"
  "bench/ablation_kl_tradeoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_kl_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
