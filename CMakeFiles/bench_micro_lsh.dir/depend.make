# Empty dependencies file for bench_micro_lsh.
# This may be replaced when dependencies are built.
