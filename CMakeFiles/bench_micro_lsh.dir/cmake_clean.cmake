file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_lsh.dir/bench/micro_lsh.cpp.o"
  "CMakeFiles/bench_micro_lsh.dir/bench/micro_lsh.cpp.o.d"
  "bench/micro_lsh"
  "bench/micro_lsh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_lsh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
