# Empty dependencies file for bench_micro_backend.
# This may be replaced when dependencies are built.
