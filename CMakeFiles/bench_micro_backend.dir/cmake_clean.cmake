file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_backend.dir/bench/micro_backend.cpp.o"
  "CMakeFiles/bench_micro_backend.dir/bench/micro_backend.cpp.o.d"
  "bench/micro_backend"
  "bench/micro_backend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_backend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
