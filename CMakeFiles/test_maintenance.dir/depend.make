# Empty dependencies file for test_maintenance.
# This may be replaced when dependencies are built.
