file(REMOVE_RECURSE
  "CMakeFiles/test_maintenance.dir/tests/test_maintenance.cpp.o"
  "CMakeFiles/test_maintenance.dir/tests/test_maintenance.cpp.o.d"
  "test_maintenance"
  "test_maintenance.pdb"
  "test_maintenance[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_maintenance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
