# Empty dependencies file for bench_fig6_cpu_inefficiencies.
# This may be replaced when dependencies are built.
