file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_cpu_inefficiencies.dir/bench/fig6_cpu_inefficiencies.cpp.o"
  "CMakeFiles/bench_fig6_cpu_inefficiencies.dir/bench/fig6_cpu_inefficiencies.cpp.o.d"
  "bench/fig6_cpu_inefficiencies"
  "bench/fig6_cpu_inefficiencies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_cpu_inefficiencies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
