file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_threshold_theory.dir/bench/fig11_threshold_theory.cpp.o"
  "CMakeFiles/bench_fig11_threshold_theory.dir/bench/fig11_threshold_theory.cpp.o.d"
  "bench/fig11_threshold_theory"
  "bench/fig11_threshold_theory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_threshold_theory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
