# Empty dependencies file for bench_fig11_threshold_theory.
# This may be replaced when dependencies are built.
