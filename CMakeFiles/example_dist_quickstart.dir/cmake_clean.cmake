file(REMOVE_RECURSE
  "CMakeFiles/example_dist_quickstart.dir/examples/dist_quickstart.cpp.o"
  "CMakeFiles/example_dist_quickstart.dir/examples/dist_quickstart.cpp.o.d"
  "examples/dist_quickstart"
  "examples/dist_quickstart.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_dist_quickstart.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
