# Empty dependencies file for example_dist_quickstart.
# This may be replaced when dependencies are built.
