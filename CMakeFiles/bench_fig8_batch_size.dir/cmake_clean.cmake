file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_batch_size.dir/bench/fig8_batch_size.cpp.o"
  "CMakeFiles/bench_fig8_batch_size.dir/bench/fig8_batch_size.cpp.o.d"
  "bench/fig8_batch_size"
  "bench/fig8_batch_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_batch_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
