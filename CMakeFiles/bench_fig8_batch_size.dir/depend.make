# Empty dependencies file for bench_fig8_batch_size.
# This may be replaced when dependencies are built.
