file(REMOVE_RECURSE
  "libslide.a"
)
