
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/dense_network.cpp" "CMakeFiles/slide.dir/src/baseline/dense_network.cpp.o" "gcc" "CMakeFiles/slide.dir/src/baseline/dense_network.cpp.o.d"
  "/root/repo/src/baseline/sampled_softmax.cpp" "CMakeFiles/slide.dir/src/baseline/sampled_softmax.cpp.o" "gcc" "CMakeFiles/slide.dir/src/baseline/sampled_softmax.cpp.o.d"
  "/root/repo/src/core/activation.cpp" "CMakeFiles/slide.dir/src/core/activation.cpp.o" "gcc" "CMakeFiles/slide.dir/src/core/activation.cpp.o.d"
  "/root/repo/src/core/builder.cpp" "CMakeFiles/slide.dir/src/core/builder.cpp.o" "gcc" "CMakeFiles/slide.dir/src/core/builder.cpp.o.d"
  "/root/repo/src/core/layer.cpp" "CMakeFiles/slide.dir/src/core/layer.cpp.o" "gcc" "CMakeFiles/slide.dir/src/core/layer.cpp.o.d"
  "/root/repo/src/core/network.cpp" "CMakeFiles/slide.dir/src/core/network.cpp.o" "gcc" "CMakeFiles/slide.dir/src/core/network.cpp.o.d"
  "/root/repo/src/core/serialize.cpp" "CMakeFiles/slide.dir/src/core/serialize.cpp.o" "gcc" "CMakeFiles/slide.dir/src/core/serialize.cpp.o.d"
  "/root/repo/src/core/sharded_layer.cpp" "CMakeFiles/slide.dir/src/core/sharded_layer.cpp.o" "gcc" "CMakeFiles/slide.dir/src/core/sharded_layer.cpp.o.d"
  "/root/repo/src/core/trainer.cpp" "CMakeFiles/slide.dir/src/core/trainer.cpp.o" "gcc" "CMakeFiles/slide.dir/src/core/trainer.cpp.o.d"
  "/root/repo/src/data/batching.cpp" "CMakeFiles/slide.dir/src/data/batching.cpp.o" "gcc" "CMakeFiles/slide.dir/src/data/batching.cpp.o.d"
  "/root/repo/src/data/dataset.cpp" "CMakeFiles/slide.dir/src/data/dataset.cpp.o" "gcc" "CMakeFiles/slide.dir/src/data/dataset.cpp.o.d"
  "/root/repo/src/data/sparse_vector.cpp" "CMakeFiles/slide.dir/src/data/sparse_vector.cpp.o" "gcc" "CMakeFiles/slide.dir/src/data/sparse_vector.cpp.o.d"
  "/root/repo/src/data/synthetic.cpp" "CMakeFiles/slide.dir/src/data/synthetic.cpp.o" "gcc" "CMakeFiles/slide.dir/src/data/synthetic.cpp.o.d"
  "/root/repo/src/data/xc_reader.cpp" "CMakeFiles/slide.dir/src/data/xc_reader.cpp.o" "gcc" "CMakeFiles/slide.dir/src/data/xc_reader.cpp.o.d"
  "/root/repo/src/dist/client.cpp" "CMakeFiles/slide.dir/src/dist/client.cpp.o" "gcc" "CMakeFiles/slide.dir/src/dist/client.cpp.o.d"
  "/root/repo/src/dist/distributed_layer.cpp" "CMakeFiles/slide.dir/src/dist/distributed_layer.cpp.o" "gcc" "CMakeFiles/slide.dir/src/dist/distributed_layer.cpp.o.d"
  "/root/repo/src/dist/frame.cpp" "CMakeFiles/slide.dir/src/dist/frame.cpp.o" "gcc" "CMakeFiles/slide.dir/src/dist/frame.cpp.o.d"
  "/root/repo/src/dist/protocol.cpp" "CMakeFiles/slide.dir/src/dist/protocol.cpp.o" "gcc" "CMakeFiles/slide.dir/src/dist/protocol.cpp.o.d"
  "/root/repo/src/dist/shm_ring.cpp" "CMakeFiles/slide.dir/src/dist/shm_ring.cpp.o" "gcc" "CMakeFiles/slide.dir/src/dist/shm_ring.cpp.o.d"
  "/root/repo/src/dist/transport.cpp" "CMakeFiles/slide.dir/src/dist/transport.cpp.o" "gcc" "CMakeFiles/slide.dir/src/dist/transport.cpp.o.d"
  "/root/repo/src/dist/worker.cpp" "CMakeFiles/slide.dir/src/dist/worker.cpp.o" "gcc" "CMakeFiles/slide.dir/src/dist/worker.cpp.o.d"
  "/root/repo/src/lsh/collision.cpp" "CMakeFiles/slide.dir/src/lsh/collision.cpp.o" "gcc" "CMakeFiles/slide.dir/src/lsh/collision.cpp.o.d"
  "/root/repo/src/lsh/doph.cpp" "CMakeFiles/slide.dir/src/lsh/doph.cpp.o" "gcc" "CMakeFiles/slide.dir/src/lsh/doph.cpp.o.d"
  "/root/repo/src/lsh/dwta.cpp" "CMakeFiles/slide.dir/src/lsh/dwta.cpp.o" "gcc" "CMakeFiles/slide.dir/src/lsh/dwta.cpp.o.d"
  "/root/repo/src/lsh/hash_table.cpp" "CMakeFiles/slide.dir/src/lsh/hash_table.cpp.o" "gcc" "CMakeFiles/slide.dir/src/lsh/hash_table.cpp.o.d"
  "/root/repo/src/lsh/mips.cpp" "CMakeFiles/slide.dir/src/lsh/mips.cpp.o" "gcc" "CMakeFiles/slide.dir/src/lsh/mips.cpp.o.d"
  "/root/repo/src/lsh/sampling.cpp" "CMakeFiles/slide.dir/src/lsh/sampling.cpp.o" "gcc" "CMakeFiles/slide.dir/src/lsh/sampling.cpp.o.d"
  "/root/repo/src/lsh/simhash.cpp" "CMakeFiles/slide.dir/src/lsh/simhash.cpp.o" "gcc" "CMakeFiles/slide.dir/src/lsh/simhash.cpp.o.d"
  "/root/repo/src/lsh/table_group.cpp" "CMakeFiles/slide.dir/src/lsh/table_group.cpp.o" "gcc" "CMakeFiles/slide.dir/src/lsh/table_group.cpp.o.d"
  "/root/repo/src/lsh/wta.cpp" "CMakeFiles/slide.dir/src/lsh/wta.cpp.o" "gcc" "CMakeFiles/slide.dir/src/lsh/wta.cpp.o.d"
  "/root/repo/src/metrics/convergence.cpp" "CMakeFiles/slide.dir/src/metrics/convergence.cpp.o" "gcc" "CMakeFiles/slide.dir/src/metrics/convergence.cpp.o.d"
  "/root/repo/src/metrics/instrumentation.cpp" "CMakeFiles/slide.dir/src/metrics/instrumentation.cpp.o" "gcc" "CMakeFiles/slide.dir/src/metrics/instrumentation.cpp.o.d"
  "/root/repo/src/metrics/latency.cpp" "CMakeFiles/slide.dir/src/metrics/latency.cpp.o" "gcc" "CMakeFiles/slide.dir/src/metrics/latency.cpp.o.d"
  "/root/repo/src/metrics/metrics.cpp" "CMakeFiles/slide.dir/src/metrics/metrics.cpp.o" "gcc" "CMakeFiles/slide.dir/src/metrics/metrics.cpp.o.d"
  "/root/repo/src/metrics/table_printer.cpp" "CMakeFiles/slide.dir/src/metrics/table_printer.cpp.o" "gcc" "CMakeFiles/slide.dir/src/metrics/table_printer.cpp.o.d"
  "/root/repo/src/optim/adam.cpp" "CMakeFiles/slide.dir/src/optim/adam.cpp.o" "gcc" "CMakeFiles/slide.dir/src/optim/adam.cpp.o.d"
  "/root/repo/src/optim/sgd.cpp" "CMakeFiles/slide.dir/src/optim/sgd.cpp.o" "gcc" "CMakeFiles/slide.dir/src/optim/sgd.cpp.o.d"
  "/root/repo/src/retrieval/exact_retriever.cpp" "CMakeFiles/slide.dir/src/retrieval/exact_retriever.cpp.o" "gcc" "CMakeFiles/slide.dir/src/retrieval/exact_retriever.cpp.o.d"
  "/root/repo/src/retrieval/hnsw_retriever.cpp" "CMakeFiles/slide.dir/src/retrieval/hnsw_retriever.cpp.o" "gcc" "CMakeFiles/slide.dir/src/retrieval/hnsw_retriever.cpp.o.d"
  "/root/repo/src/retrieval/lsh_retriever.cpp" "CMakeFiles/slide.dir/src/retrieval/lsh_retriever.cpp.o" "gcc" "CMakeFiles/slide.dir/src/retrieval/lsh_retriever.cpp.o.d"
  "/root/repo/src/retrieval/retriever.cpp" "CMakeFiles/slide.dir/src/retrieval/retriever.cpp.o" "gcc" "CMakeFiles/slide.dir/src/retrieval/retriever.cpp.o.d"
  "/root/repo/src/serve/engine.cpp" "CMakeFiles/slide.dir/src/serve/engine.cpp.o" "gcc" "CMakeFiles/slide.dir/src/serve/engine.cpp.o.d"
  "/root/repo/src/serve/request_queue.cpp" "CMakeFiles/slide.dir/src/serve/request_queue.cpp.o" "gcc" "CMakeFiles/slide.dir/src/serve/request_queue.cpp.o.d"
  "/root/repo/src/serve/snapshot.cpp" "CMakeFiles/slide.dir/src/serve/snapshot.cpp.o" "gcc" "CMakeFiles/slide.dir/src/serve/snapshot.cpp.o.d"
  "/root/repo/src/simd/backend.cpp" "CMakeFiles/slide.dir/src/simd/backend.cpp.o" "gcc" "CMakeFiles/slide.dir/src/simd/backend.cpp.o.d"
  "/root/repo/src/simd/kernels.cpp" "CMakeFiles/slide.dir/src/simd/kernels.cpp.o" "gcc" "CMakeFiles/slide.dir/src/simd/kernels.cpp.o.d"
  "/root/repo/src/simd/kernels_avx2.cpp" "CMakeFiles/slide.dir/src/simd/kernels_avx2.cpp.o" "gcc" "CMakeFiles/slide.dir/src/simd/kernels_avx2.cpp.o.d"
  "/root/repo/src/simd/kernels_avx512.cpp" "CMakeFiles/slide.dir/src/simd/kernels_avx512.cpp.o" "gcc" "CMakeFiles/slide.dir/src/simd/kernels_avx512.cpp.o.d"
  "/root/repo/src/simd/kernels_scalar.cpp" "CMakeFiles/slide.dir/src/simd/kernels_scalar.cpp.o" "gcc" "CMakeFiles/slide.dir/src/simd/kernels_scalar.cpp.o.d"
  "/root/repo/src/sys/cpu_features.cpp" "CMakeFiles/slide.dir/src/sys/cpu_features.cpp.o" "gcc" "CMakeFiles/slide.dir/src/sys/cpu_features.cpp.o.d"
  "/root/repo/src/sys/hugepages.cpp" "CMakeFiles/slide.dir/src/sys/hugepages.cpp.o" "gcc" "CMakeFiles/slide.dir/src/sys/hugepages.cpp.o.d"
  "/root/repo/src/sys/perf_counters.cpp" "CMakeFiles/slide.dir/src/sys/perf_counters.cpp.o" "gcc" "CMakeFiles/slide.dir/src/sys/perf_counters.cpp.o.d"
  "/root/repo/src/sys/thread_pool.cpp" "CMakeFiles/slide.dir/src/sys/thread_pool.cpp.o" "gcc" "CMakeFiles/slide.dir/src/sys/thread_pool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
