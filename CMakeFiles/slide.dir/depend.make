# Empty dependencies file for slide.
# This may be replaced when dependencies are built.
