CMakeFiles/slide.dir/src/core/activation.cpp.o: \
 /root/repo/src/core/activation.cpp /usr/include/stdc-predef.h \
 /root/repo/src/core/activation.h
