CMakeFiles/slide.dir/src/sys/cpu_features.cpp.o: \
 /root/repo/src/sys/cpu_features.cpp /usr/include/stdc-predef.h \
 /root/repo/src/sys/cpu_features.h
