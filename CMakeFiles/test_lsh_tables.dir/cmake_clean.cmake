file(REMOVE_RECURSE
  "CMakeFiles/test_lsh_tables.dir/tests/test_lsh_tables.cpp.o"
  "CMakeFiles/test_lsh_tables.dir/tests/test_lsh_tables.cpp.o.d"
  "test_lsh_tables"
  "test_lsh_tables.pdb"
  "test_lsh_tables[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lsh_tables.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
