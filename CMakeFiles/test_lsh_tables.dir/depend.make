# Empty dependencies file for test_lsh_tables.
# This may be replaced when dependencies are built.
