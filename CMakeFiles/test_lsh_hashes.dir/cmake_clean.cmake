file(REMOVE_RECURSE
  "CMakeFiles/test_lsh_hashes.dir/tests/test_lsh_hashes.cpp.o"
  "CMakeFiles/test_lsh_hashes.dir/tests/test_lsh_hashes.cpp.o.d"
  "test_lsh_hashes"
  "test_lsh_hashes.pdb"
  "test_lsh_hashes[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lsh_hashes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
