# Empty dependencies file for test_lsh_hashes.
# This may be replaced when dependencies are built.
