# Empty dependencies file for bench_shard_scaling.
# This may be replaced when dependencies are built.
