file(REMOVE_RECURSE
  "CMakeFiles/bench_shard_scaling.dir/bench/shard_scaling.cpp.o"
  "CMakeFiles/bench_shard_scaling.dir/bench/shard_scaling.cpp.o.d"
  "bench/shard_scaling"
  "bench/shard_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_shard_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
