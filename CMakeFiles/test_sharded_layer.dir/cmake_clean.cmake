file(REMOVE_RECURSE
  "CMakeFiles/test_sharded_layer.dir/tests/test_sharded_layer.cpp.o"
  "CMakeFiles/test_sharded_layer.dir/tests/test_sharded_layer.cpp.o.d"
  "test_sharded_layer"
  "test_sharded_layer.pdb"
  "test_sharded_layer[1]_tests.cmake"
  "test_sharded_layer[2]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sharded_layer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
