# Empty dependencies file for test_sharded_layer.
# This may be replaced when dependencies are built.
