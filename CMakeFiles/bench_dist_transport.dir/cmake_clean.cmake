file(REMOVE_RECURSE
  "CMakeFiles/bench_dist_transport.dir/bench/dist_transport.cpp.o"
  "CMakeFiles/bench_dist_transport.dir/bench/dist_transport.cpp.o.d"
  "bench/dist_transport"
  "bench/dist_transport.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dist_transport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
