# Empty dependencies file for bench_dist_transport.
# This may be replaced when dependencies are built.
