file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_sampling_strategies.dir/bench/fig4_sampling_strategies.cpp.o"
  "CMakeFiles/bench_fig4_sampling_strategies.dir/bench/fig4_sampling_strategies.cpp.o.d"
  "bench/fig4_sampling_strategies"
  "bench/fig4_sampling_strategies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_sampling_strategies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
