file(REMOVE_RECURSE
  "CMakeFiles/test_retrieval.dir/tests/test_retrieval.cpp.o"
  "CMakeFiles/test_retrieval.dir/tests/test_retrieval.cpp.o.d"
  "test_retrieval"
  "test_retrieval.pdb"
  "test_retrieval[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_retrieval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
