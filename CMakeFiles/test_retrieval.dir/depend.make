# Empty dependencies file for test_retrieval.
# This may be replaced when dependencies are built.
