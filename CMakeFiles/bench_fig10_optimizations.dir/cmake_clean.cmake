file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_optimizations.dir/bench/fig10_optimizations.cpp.o"
  "CMakeFiles/bench_fig10_optimizations.dir/bench/fig10_optimizations.cpp.o.d"
  "bench/fig10_optimizations"
  "bench/fig10_optimizations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_optimizations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
