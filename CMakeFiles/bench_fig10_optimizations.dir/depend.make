# Empty dependencies file for bench_fig10_optimizations.
# This may be replaced when dependencies are built.
