file(REMOVE_RECURSE
  "CMakeFiles/example_serve_cli.dir/examples/serve_cli.cpp.o"
  "CMakeFiles/example_serve_cli.dir/examples/serve_cli.cpp.o.d"
  "examples/serve_cli"
  "examples/serve_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_serve_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
