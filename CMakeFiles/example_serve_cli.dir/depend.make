# Empty dependencies file for example_serve_cli.
# This may be replaced when dependencies are built.
