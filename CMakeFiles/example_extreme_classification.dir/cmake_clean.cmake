file(REMOVE_RECURSE
  "CMakeFiles/example_extreme_classification.dir/examples/extreme_classification.cpp.o"
  "CMakeFiles/example_extreme_classification.dir/examples/extreme_classification.cpp.o.d"
  "examples/extreme_classification"
  "examples/extreme_classification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_extreme_classification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
