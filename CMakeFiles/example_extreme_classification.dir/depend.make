# Empty dependencies file for example_extreme_classification.
# This may be replaced when dependencies are built.
