file(REMOVE_RECURSE
  "CMakeFiles/bench_maintenance_overhead.dir/bench/maintenance_overhead.cpp.o"
  "CMakeFiles/bench_maintenance_overhead.dir/bench/maintenance_overhead.cpp.o.d"
  "bench/maintenance_overhead"
  "bench/maintenance_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_maintenance_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
