# Empty dependencies file for bench_maintenance_overhead.
# This may be replaced when dependencies are built.
