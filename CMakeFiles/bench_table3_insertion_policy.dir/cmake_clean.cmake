file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_insertion_policy.dir/bench/table3_insertion_policy.cpp.o"
  "CMakeFiles/bench_table3_insertion_policy.dir/bench/table3_insertion_policy.cpp.o.d"
  "bench/table3_insertion_policy"
  "bench/table3_insertion_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_insertion_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
