# Empty dependencies file for bench_table3_insertion_policy.
# This may be replaced when dependencies are built.
