# Empty dependencies file for bench_table2_core_utilization.
# This may be replaced when dependencies are built.
