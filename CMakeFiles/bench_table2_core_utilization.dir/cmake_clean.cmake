file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_core_utilization.dir/bench/table2_core_utilization.cpp.o"
  "CMakeFiles/bench_table2_core_utilization.dir/bench/table2_core_utilization.cpp.o.d"
  "bench/table2_core_utilization"
  "bench/table2_core_utilization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_core_utilization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
