file(REMOVE_RECURSE
  "CMakeFiles/test_layer.dir/tests/test_layer.cpp.o"
  "CMakeFiles/test_layer.dir/tests/test_layer.cpp.o.d"
  "test_layer"
  "test_layer.pdb"
  "test_layer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_layer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
