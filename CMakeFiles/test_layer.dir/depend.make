# Empty dependencies file for test_layer.
# This may be replaced when dependencies are built.
