file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_hugepages.dir/bench/table4_hugepages.cpp.o"
  "CMakeFiles/bench_table4_hugepages.dir/bench/table4_hugepages.cpp.o.d"
  "bench/table4_hugepages"
  "bench/table4_hugepages.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_hugepages.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
