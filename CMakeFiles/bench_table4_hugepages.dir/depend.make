# Empty dependencies file for bench_table4_hugepages.
# This may be replaced when dependencies are built.
