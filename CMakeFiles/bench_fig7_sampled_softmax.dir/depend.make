# Empty dependencies file for bench_fig7_sampled_softmax.
# This may be replaced when dependencies are built.
