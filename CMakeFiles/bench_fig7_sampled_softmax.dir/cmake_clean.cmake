file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_sampled_softmax.dir/bench/fig7_sampled_softmax.cpp.o"
  "CMakeFiles/bench_fig7_sampled_softmax.dir/bench/fig7_sampled_softmax.cpp.o.d"
  "bench/fig7_sampled_softmax"
  "bench/fig7_sampled_softmax.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_sampled_softmax.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
