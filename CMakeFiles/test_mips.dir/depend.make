# Empty dependencies file for test_mips.
# This may be replaced when dependencies are built.
