file(REMOVE_RECURSE
  "CMakeFiles/test_mips.dir/tests/test_mips.cpp.o"
  "CMakeFiles/test_mips.dir/tests/test_mips.cpp.o.d"
  "test_mips"
  "test_mips.pdb"
  "test_mips[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mips.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
