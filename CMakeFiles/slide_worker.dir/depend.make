# Empty dependencies file for slide_worker.
# This may be replaced when dependencies are built.
