file(REMOVE_RECURSE
  "CMakeFiles/slide_worker.dir/tools/slide_worker.cpp.o"
  "CMakeFiles/slide_worker.dir/tools/slide_worker.cpp.o.d"
  "tools/slide_worker"
  "tools/slide_worker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slide_worker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
