file(REMOVE_RECURSE
  "CMakeFiles/bench_retrieval_backends.dir/bench/retrieval_backends.cpp.o"
  "CMakeFiles/bench_retrieval_backends.dir/bench/retrieval_backends.cpp.o.d"
  "bench/retrieval_backends"
  "bench/retrieval_backends.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_retrieval_backends.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
