# Empty dependencies file for bench_retrieval_backends.
# This may be replaced when dependencies are built.
