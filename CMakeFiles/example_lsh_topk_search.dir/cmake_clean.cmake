file(REMOVE_RECURSE
  "CMakeFiles/example_lsh_topk_search.dir/examples/lsh_topk_search.cpp.o"
  "CMakeFiles/example_lsh_topk_search.dir/examples/lsh_topk_search.cpp.o.d"
  "examples/lsh_topk_search"
  "examples/lsh_topk_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_lsh_topk_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
