# Empty dependencies file for example_lsh_topk_search.
# This may be replaced when dependencies are built.
