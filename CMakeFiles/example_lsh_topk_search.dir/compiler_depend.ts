# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for example_lsh_topk_search.
