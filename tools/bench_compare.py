#!/usr/bin/env python3
"""Benchmark regression gate: compare BENCH_*.json artifacts to baselines.

Used by the `bench-regression` CI job: each bench emits a machine-readable
JSON artifact (either this repo's bench::Json format or google-benchmark's
--benchmark_out format), and this script fails the job when any gated
metric regresses more than --threshold (default 25%) against the snapshot
checked in under bench/baselines/.

Metric extraction:
  * google-benchmark files ({"benchmarks": [...]}) -> one metric per entry,
    keyed by the benchmark name, value = cpu_time (lower is better).
  * bench::Json files -> the document is flattened to dotted paths; a
    numeric leaf becomes a gated metric when its key signals a direction:
      higher-is-better: *per_sec*, *qps*, *speedup*, *throughput*
      lower-is-better:  *seconds*, *_time*, *latency*, *_us, *_ms, *_ns
    Everything else (counts, config echoes, accuracies) is informational.

Comparison modes:
  * absolute (default): each metric's cur/base ratio is thresholded
    directly. Right for a dedicated, quiet benchmarking host.
  * --relative: each metric's slowdown is first normalized by the MEDIAN
    slowdown of its file. Shared CI runners routinely swing 30-40% in
    sustained throughput (frequency scaling, noisy neighbors); the median
    tracks that machine factor, so what remains is the *shape* change —
    one kernel regressing while its siblings hold still. The blind spot
    (a perfectly uniform slowdown of every metric in a file) is covered by
    the maintenance bench's within-run speedup ratios, which are
    scale-invariant and gated in every mode. CI uses --relative.

Baselines are machine-specific: regenerate with --update on the machine
class that runs the gate (CI does this implicitly by uploading the current
artifacts — download, inspect, and commit them to refresh).

Exit codes: 0 ok, 1 regression or missing/corrupt current artifact.
"""

import argparse
import json
import math
import os
import sys

HIGHER_TOKENS = ("per_sec", "qps", "speedup", "throughput", "items_per_second")
LOWER_TOKENS = ("seconds", "_time", "latency", "_us", "_ms", "_ns")


def is_number(v):
    return isinstance(v, (int, float)) and not isinstance(v, bool) and math.isfinite(v)


def flatten(node, path, out):
    if isinstance(node, dict):
        # Prefer a human-meaningful label for array elements when present.
        for key, value in node.items():
            flatten(value, f"{path}.{key}" if path else key, out)
    elif isinstance(node, list):
        for i, value in enumerate(node):
            label = str(i)
            if isinstance(value, dict):
                parts = [str(value[k]) for k in ("schedule", "policy", "name", "label") if k in value]
                if parts:
                    label = "/".join(parts)
            flatten(value, f"{path}[{label}]", out)
    elif is_number(node):
        out[path] = float(node)


def direction_of(key):
    lowered = key.lower()
    if any(tok in lowered for tok in HIGHER_TOKENS):
        return "higher"
    if any(tok in lowered for tok in LOWER_TOKENS):
        return "lower"
    return None


def extract_metrics(doc):
    """Returns {metric_name: (value, direction)} for gated metrics."""
    metrics = {}
    if isinstance(doc, dict) and isinstance(doc.get("benchmarks"), list):
        # google-benchmark format: cpu_time is the stable per-iteration
        # cost. With --benchmark_repetitions, keep the minimum across
        # repetitions (scheduler noise only ever adds time).
        for entry in doc["benchmarks"]:
            if entry.get("run_type") == "aggregate":
                continue
            name = entry.get("name")
            if "/repeats:" in (name or ""):
                name = name.split("/repeats:")[0]
            if name and is_number(entry.get("cpu_time")):
                value = float(entry["cpu_time"])
                if name in metrics:
                    value = min(value, metrics[name][0])
                metrics[name] = (value, "lower")
        return metrics
    flat = {}
    flatten(doc, "", flat)
    for key, value in flat.items():
        direction = direction_of(key)
        if direction is not None:
            metrics[key] = (value, direction)
    return metrics


def load(path):
    with open(path, "r", encoding="utf-8") as f:
        return json.load(f)


def compare_file(name, baseline_doc, current_doc, threshold, relative):
    """Returns a list of (metric, base, cur, slowdown, status) rows; status
    in {ok, REGRESSION, missing, new}. `slowdown` > 1 means worse than
    baseline (direction already folded in)."""
    base = extract_metrics(baseline_doc)
    cur = extract_metrics(current_doc)
    rows = []
    slowdowns = {}
    for metric, (base_value, direction) in base.items():
        if metric not in cur:
            continue
        cur_value = cur[metric][0]
        if base_value <= 0 or cur_value <= 0:
            continue
        # Sub-5ms wall-clock readings (e.g. the ~0.2ms scheduling overhead
        # an async arm reports as its "stall") are pure noise — skip them.
        if "seconds" in metric.lower() and base_value < 5e-3:
            continue
        slowdowns[metric] = (cur_value / base_value if direction == "lower"
                             else base_value / cur_value)
    # Within-run ratio metrics ("speedup_*") are already scale-invariant:
    # they neither contribute to nor get divided by the machine factor.
    def is_invariant(metric):
        return "speedup" in metric.lower()

    machine_factor = 1.0
    if relative:
        ordered = sorted(v for m, v in slowdowns.items() if not is_invariant(m))
        if ordered:
            machine_factor = ordered[len(ordered) // 2]
    for metric, (base_value, direction) in sorted(base.items()):
        if metric not in cur:
            rows.append((metric, base_value, None, None, "missing"))
            continue
        cur_value = cur[metric][0]
        if metric not in slowdowns:
            rows.append((metric, base_value, cur_value, None, "ok"))
            continue
        slowdown = slowdowns[metric]
        if not is_invariant(metric):
            slowdown /= machine_factor
        bad = slowdown > 1.0 + threshold
        rows.append((metric, base_value, cur_value, slowdown,
                     "REGRESSION" if bad else "ok"))
    for metric in sorted(set(cur) - set(base)):
        rows.append((metric, None, cur[metric][0], None, "new"))
    if relative:
        rows.append((f"(median machine factor {machine_factor:.2f}x "
                     "divided out)", None, None, None, "note"))
    return rows


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline-dir", default="bench/baselines")
    parser.add_argument("--current-dir", default=".")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="relative regression tolerance (0.25 = 25%%)")
    parser.add_argument("--relative", action="store_true",
                        help="normalize by each file's median slowdown "
                             "(for noisy shared runners; see module doc)")
    parser.add_argument("--files", nargs="*", default=None,
                        help="restrict to these artifact basenames (lets CI "
                             "gate micro kernels and end-to-end throughput "
                             "at different thresholds)")
    parser.add_argument("--update", action="store_true",
                        help="copy current artifacts over the baselines "
                             "instead of comparing")
    args = parser.parse_args()

    if args.update:
        # Bootstrap-friendly: works with an empty baseline dir, honors
        # --files so a single bench's snapshot can be refreshed alone.
        os.makedirs(args.baseline_dir, exist_ok=True)
        updated = 0
        for name in sorted(os.listdir(args.current_dir)):
            if not (name.startswith("BENCH_") and name.endswith(".json")):
                continue
            if args.files is not None and name not in args.files:
                continue
            doc = load(os.path.join(args.current_dir, name))
            with open(os.path.join(args.baseline_dir, name), "w",
                      encoding="utf-8") as f:
                json.dump(doc, f, indent=1, sort_keys=False)
                f.write("\n")
            print(f"updated baseline {name}")
            updated += 1
        if updated == 0:
            print(f"error: no matching BENCH_*.json in {args.current_dir}")
            return 1
        return 0

    baselines = sorted(
        f for f in os.listdir(args.baseline_dir)
        if f.startswith("BENCH_") and f.endswith(".json")
        and (args.files is None or f in args.files))
    if not baselines:
        print(f"error: no matching BENCH_*.json baselines in "
              f"{args.baseline_dir}")
        return 1

    failed = False
    for name in baselines:
        current_path = os.path.join(args.current_dir, name)
        print(f"\n== {name} (threshold {args.threshold:.0%}) ==")
        if not os.path.exists(current_path):
            print(f"error: current artifact {current_path} missing "
                  "(bench crashed or was skipped?)")
            failed = True
            continue
        try:
            current_doc = load(current_path)
        except json.JSONDecodeError as err:
            print(f"error: {current_path} is not valid JSON ({err}) — "
                  "truncated artifact?")
            failed = True
            continue
        rows = compare_file(name, load(os.path.join(args.baseline_dir, name)),
                            current_doc, args.threshold, args.relative)
        gated = 0
        for metric, base, cur, slowdown, status in rows:
            if status == "ok" and slowdown is None:
                continue
            if status in ("ok", "REGRESSION"):
                gated += 1
                print(f"  [{status:^10}] {metric:<60} "
                      f"base={base:<12.6g} cur={cur:<12.6g} "
                      f"slowdown={slowdown:5.2f}x")
                failed |= status == "REGRESSION"
            elif status == "missing":
                print(f"  [{status:^10}] {metric:<60} base={base:.6g} "
                      "(metric disappeared — renamed? regenerate baselines)")
            elif status == "note":
                print(f"  {metric}")
            else:  # new
                print(f"  [{status:^10}] {metric:<60} cur={cur:.6g} "
                      "(not gated until baselines are refreshed)")
        print(f"  {gated} gated metric(s) checked")

    print("\nbench_compare:", "FAIL" if failed else "PASS")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
