#!/usr/bin/env python3
"""Lint a Prometheus text-format (0.0.4) scrape.

Reads the exposition from a file (or stdin with "-") and enforces the
invariants our renderer (src/metrics/prometheus.cpp) promises:

  * metric and label names match the Prometheus grammar
  * every sample's family has a # TYPE line, declared before first use
  * at most one TYPE/HELP per family; no duplicate samples (name+labels)
  * counters end in _total and are non-negative
  * histograms: le buckets are cumulative, +Inf bucket present,
    _count == +Inf bucket, _sum present
  * no trailing garbage lines

With --require-serve, also checks that the serving families the CI smoke
test depends on are present (per-lane depth, shed, deadline-miss,
latency histogram).

Exit code 0 when clean, 1 with one violation per line on stderr.

Usage:
  python3 tools/check_prom.py scrape.txt
  curl -s localhost:9109/metrics | python3 tools/check_prom.py - --require-serve
"""

import argparse
import math
import re
import sys

METRIC_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
# name{labels} value   (no timestamps: our renderer never emits them)
SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>\S+)$"
)
LABEL_PAIR_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')

REQUIRED_SERVE_FAMILIES = [
    "slide_serve_submitted_total",
    "slide_serve_rejected_total",
    "slide_serve_completed_total",
    "slide_serve_errors_total",
    "slide_serve_shed_total",
    "slide_serve_deadline_miss_total",
    "slide_serve_queue_depth",
    "slide_serve_ewma_service_seconds",
    "slide_serve_latency_seconds",
]


def base_family(name):
    """Map a histogram sample name to its family name."""
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix):
            return name[: -len(suffix)]
    return name


def parse_value(raw):
    if raw == "+Inf":
        return math.inf
    if raw == "-Inf":
        return -math.inf
    return float(raw)  # raises ValueError on garbage


def lint(text, require_serve=False):
    errors = []
    types = {}  # family -> type string
    helps = set()
    seen_samples = set()  # (name, labels-string) for duplicate detection
    # family -> {labels-without-le (sorted tuple) -> [(le, value)]}
    histogram_buckets = {}
    histogram_sums = {}
    histogram_counts = {}
    families_seen = set()

    for lineno, line in enumerate(text.splitlines(), 1):
        def err(msg):
            errors.append("line %d: %s: %r" % (lineno, msg, line))

        if not line.strip():
            continue
        if line.startswith("# HELP "):
            parts = line.split(" ", 3)
            if len(parts) < 4 or not METRIC_RE.match(parts[2]):
                err("malformed HELP")
                continue
            if parts[2] in helps:
                err("duplicate HELP for family")
            helps.add(parts[2])
            continue
        if line.startswith("# TYPE "):
            parts = line.split(" ")
            if len(parts) != 4 or not METRIC_RE.match(parts[2]):
                err("malformed TYPE")
                continue
            name, kind = parts[2], parts[3]
            if kind not in ("counter", "gauge", "histogram", "summary", "untyped"):
                err("unknown TYPE kind")
                continue
            if name in types:
                err("duplicate TYPE for family")
            types[name] = kind
            continue
        if line.startswith("#"):
            continue  # free-form comment

        m = SAMPLE_RE.match(line)
        if not m:
            err("unparseable sample line")
            continue
        name = m.group("name")
        raw_labels = m.group("labels") or ""
        try:
            value = parse_value(m.group("value"))
        except ValueError:
            err("unparseable sample value")
            continue

        labels = LABEL_PAIR_RE.findall(raw_labels)
        # Re-serialize to catch junk the pair regex skipped over.
        rebuilt = ",".join('%s="%s"' % (k, v) for k, v in labels)
        if rebuilt != raw_labels:
            err("malformed label block")
            continue
        for key, _ in labels:
            if not LABEL_RE.match(key):
                err("bad label name %r" % key)

        family = base_family(name)
        families_seen.add(family)
        kind = types.get(family) or types.get(name)
        if kind is None:
            err("sample for family with no TYPE line")
            continue

        sample_key = (name, raw_labels)
        if sample_key in seen_samples:
            err("duplicate sample (same name and labels)")
        seen_samples.add(sample_key)

        if kind == "counter":
            if not name.endswith("_total"):
                err("counter name must end in _total")
            if value < 0:
                err("negative counter value")
        elif kind == "histogram":
            rest = tuple(sorted((k, v) for k, v in labels if k != "le"))
            if name.endswith("_bucket"):
                le = dict(labels).get("le")
                if le is None:
                    err("histogram bucket without le label")
                    continue
                histogram_buckets.setdefault(family, {}).setdefault(
                    rest, []
                ).append((parse_value(le), value))
            elif name.endswith("_sum"):
                histogram_sums.setdefault(family, {})[rest] = value
            elif name.endswith("_count"):
                histogram_counts.setdefault(family, {})[rest] = value
            else:
                err("histogram sample must be _bucket/_sum/_count")

    for family, series in histogram_buckets.items():
        for rest, buckets in series.items():
            label_desc = "%s{%s}" % (family, ",".join("%s=%s" % kv for kv in rest))
            les = [le for le, _ in buckets]
            if les != sorted(les):
                errors.append("%s: le buckets out of order" % label_desc)
            counts = [v for _, v in buckets]
            if any(b > a for a, b in zip(counts[1:], counts[:-1])):
                errors.append("%s: bucket counts not cumulative" % label_desc)
            if not les or not math.isinf(les[-1]):
                errors.append("%s: missing +Inf bucket" % label_desc)
                continue
            count = histogram_counts.get(family, {}).get(rest)
            if count is None:
                errors.append("%s: missing _count" % label_desc)
            elif count != counts[-1]:
                errors.append(
                    "%s: _count (%g) != +Inf bucket (%g)"
                    % (label_desc, count, counts[-1])
                )
            if rest not in histogram_sums.get(family, {}):
                errors.append("%s: missing _sum" % label_desc)

    if require_serve:
        for family in REQUIRED_SERVE_FAMILIES:
            if family not in families_seen:
                errors.append("required serve family missing: %s" % family)

    return errors


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("path", help="scrape file, or - for stdin")
    ap.add_argument(
        "--require-serve",
        action="store_true",
        help="also require the serving metric families CI smoke-tests",
    )
    args = ap.parse_args()

    if args.path == "-":
        text = sys.stdin.read()
    else:
        with open(args.path, "r", encoding="utf-8") as fh:
            text = fh.read()

    errors = lint(text, require_serve=args.require_serve)
    for e in errors:
        print(e, file=sys.stderr)
    if errors:
        print("check_prom: %d violation(s)" % len(errors), file=sys.stderr)
        return 1
    print("check_prom: OK (%d lines)" % len(text.splitlines()))
    return 0


if __name__ == "__main__":
    sys.exit(main())
