// slide_worker — standalone shard-worker process for distributed model
// parallelism (src/dist/).
//
//   slide_worker --listen tcp::0
//
// binds the endpoint, prints the dialable form ("LISTENING <endpoint>") on
// stdout so launch scripts can capture the kernel-assigned port, accepts
// exactly one coordinator connection, and serves dist/protocol.h RPCs
// until kShutdown (exit 0) or the coordinator vanishes (exit 2). One
// process per shard; the coordinator's DistributedSampledLayer dials the
// printed endpoints in shard order.
#include <cstdio>
#include <cstring>
#include <exception>
#include <string>

#include "dist/transport.h"
#include "dist/worker.h"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--listen <endpoint>]\n"
               "  endpoint: tcp:<host>:<port> (tcp::0 = ephemeral port on all\n"
               "            interfaces) or shm:<path>\n",
               argv0);
  return 64;  // EX_USAGE
}

}  // namespace

int main(int argc, char** argv) {
  std::string endpoint = "tcp::0";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--listen") == 0 && i + 1 < argc) {
      endpoint = argv[++i];
    } else if (std::strcmp(argv[i], "--help") == 0 ||
               std::strcmp(argv[i], "-h") == 0) {
      usage(argv[0]);
      return 0;
    } else {
      return usage(argv[0]);
    }
  }

  try {
    auto listener = slide::dist::listen_endpoint(endpoint);
    // Launch scripts block on this line to learn the resolved port; flush
    // so it is visible even through a pipe.
    std::printf("LISTENING %s\n", listener->endpoint().c_str());
    std::fflush(stdout);

    slide::dist::ShardWorker worker(listener->accept(/*timeout_ms=*/-1));
    listener->close();  // one coordinator per worker process
    const auto reason = worker.serve();
    if (reason == slide::dist::ShardWorker::ExitReason::kShutdown) return 0;
    std::fprintf(stderr, "slide_worker: coordinator connection lost\n");
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "slide_worker: %s\n", e.what());
    return 1;
  }
}
